//! Hierarchical, dual-clock execution spans and their exporters.
//!
//! The metrics registry answers *how much* (counters, histograms,
//! series); spans answer *where the time went*. A [`SpanProfiler`]
//! records a forest of named spans, each carrying **two clocks**:
//!
//! * **virtual time** (`vt_*_us`, [`SimTime`] microseconds) — the
//!   simulator's deterministic clock. Byte-stable across runs, machines,
//!   and `--jobs` values; everything gated on determinism compares only
//!   these fields.
//! * **wall-clock time** (`wall_*_ns`, nanoseconds since the profiler's
//!   epoch) — how long the host actually took. Never gated, never
//!   compared across runs; quarantined under its own `wall` key so it
//!   can be stripped (see [`ProfileSummary::virtual_only`]).
//!
//! Parenting uses the profiler's open-span stack: the engine's event
//! loop is single-threaded, so `begin` inside an open span nests under
//! it regardless of which [`Track`] either span displays on. Phases
//! that advance the event clock (`scan.step`, `extent.fetch`,
//! `cpu.process`, `throttle.wait`) are *range* spans; overlapping or
//! asynchronous sub-events (per-run miss I/O, retries, prefetch,
//! manager placements) are *instant* spans (`vt_start == vt_end`)
//! carrying attributes — this guarantees begin/end balance and
//! per-track monotone range timestamps by construction (instants may
//! sit anywhere inside their parent's range; viewers sort by `ts`).
//!
//! Exporters: [`perfetto_trace`] renders the forest as Chrome
//! trace-event JSON (openable directly in `ui.perfetto.dev`, one track
//! per scan stream plus driver and manager tracks), and
//! [`SpanProfiler::summary`] folds it into a [`ProfileSummary`]
//! (per-phase inclusive/exclusive time, collapsed flamegraph stacks,
//! hottest spans) that `RunReport` can embed.

use parking_lot::Mutex;
use scanshare_storage::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Default maximum number of recorded spans per profiler. Past the cap
/// new spans are counted in [`SpanProfiler::dropped`] instead of
/// recorded, so a pathological workload cannot exhaust memory.
pub const DEFAULT_SPAN_CAP: usize = 1 << 16;

/// How many spans [`ProfileSummary::hottest`] retains.
pub const HOTTEST_SPANS: usize = 10;

/// Which display track a span renders on in the Perfetto UI. Tracks
/// affect *display only* — parenting follows the profiler's open-span
/// stack, so a manager span still nests under the scan step that
/// triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Track {
    /// The run driver: spec parsing, warmup, the engine event loop.
    Driver,
    /// The scan-sharing manager: placement and re-grouping decisions.
    Manager,
    /// One scan stream (by stream index).
    Stream(usize),
}

impl Track {
    /// Stable Perfetto thread id for the track.
    pub fn tid(&self) -> u64 {
        match self {
            Track::Driver => 0,
            Track::Manager => 1,
            Track::Stream(i) => 2 + *i as u64,
        }
    }

    /// Human-readable track name (the Perfetto thread name).
    pub fn label(&self) -> String {
        match self {
            Track::Driver => "driver".to_string(),
            Track::Manager => "manager".to_string(),
            Track::Stream(i) => format!("stream {i}"),
        }
    }
}

/// Handle to an open span, returned by [`SpanProfiler::begin`] and
/// consumed by [`SpanProfiler::end`]. A profiler past its record cap
/// hands out inert ids whose `end`/`attr` calls are no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

const DROPPED_ID: u64 = u64::MAX;

impl SpanId {
    /// An inert id: `end`/`attr` on it do nothing. Useful as a default
    /// when profiling is disabled.
    pub fn none() -> Self {
        SpanId(DROPPED_ID)
    }
}

/// One recorded span. `vt_*_us` fields are deterministic virtual time;
/// `wall_*_ns` fields are host wall-clock nanoseconds since the
/// profiler's epoch and are never compared across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Dense id (index in recording order).
    pub id: u64,
    /// Enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Phase name (e.g. `scan.step`, `extent.fetch`, `io.miss`).
    pub name: String,
    /// Display track.
    pub track: Track,
    /// Virtual start, microseconds.
    pub vt_start_us: u64,
    /// Virtual end, microseconds (`== vt_start_us` for instants).
    pub vt_end_us: u64,
    /// Wall-clock start, nanoseconds since the profiler epoch.
    pub wall_start_ns: u64,
    /// Wall-clock end, nanoseconds since the profiler epoch.
    pub wall_end_ns: u64,
    /// `(key, value)` attributes (group ids, policy names, devices…).
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Virtual duration in microseconds.
    pub fn vt_us(&self) -> u64 {
        self.vt_end_us.saturating_sub(self.vt_start_us)
    }

    /// Wall duration in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.wall_end_ns.saturating_sub(self.wall_start_ns)
    }

    /// Whether this is an instant (zero virtual width) span.
    pub fn is_instant(&self) -> bool {
        self.vt_start_us == self.vt_end_us
    }
}

#[derive(Debug)]
struct ProfilerInner {
    records: Vec<SpanRecord>,
    stack: Vec<u64>,
    cap: usize,
    dropped: u64,
}

/// A cloneable span recorder. All clones share state; recording costs
/// one short mutex hold. The engine threads one of these through a run
/// only when profiling was requested — a `None` profiler is completely
/// pay-for-what-you-use.
#[derive(Debug, Clone)]
pub struct SpanProfiler {
    inner: Arc<Mutex<ProfilerInner>>,
    epoch: Instant,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        SpanProfiler::new(DEFAULT_SPAN_CAP)
    }
}

impl SpanProfiler {
    /// A fresh profiler retaining at most `cap` spans.
    pub fn new(cap: usize) -> Self {
        SpanProfiler {
            inner: Arc::new(Mutex::new(ProfilerInner {
                records: Vec::new(),
                stack: Vec::new(),
                cap,
                dropped: 0,
            })),
            epoch: Instant::now(),
        }
    }

    fn wall_now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a range span on an explicit track at virtual time `vt`. The
    /// span nests under the currently open span (if any) and becomes
    /// the open span until [`SpanProfiler::end`].
    pub fn begin(&self, track: Track, name: &str, vt: SimTime) -> SpanId {
        let wall = self.wall_now();
        let mut g = self.inner.lock();
        if g.records.len() >= g.cap {
            g.dropped += 1;
            return SpanId(DROPPED_ID);
        }
        let id = g.records.len() as u64;
        let parent = g.stack.last().copied();
        g.records.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            track,
            vt_start_us: vt.as_micros(),
            vt_end_us: vt.as_micros(),
            wall_start_ns: wall,
            wall_end_ns: wall,
            attrs: Vec::new(),
        });
        g.stack.push(id);
        SpanId(id)
    }

    /// Open a range span inheriting the open span's track
    /// ([`Track::Driver`] when nothing is open).
    pub fn begin_child(&self, name: &str, vt: SimTime) -> SpanId {
        let track = self.open_track();
        self.begin(track, name, vt)
    }

    /// Close span `id` at virtual time `vt`. Also closes any child
    /// spans left open beneath it (tolerant of early exits on error
    /// paths). A backwards `vt` is clamped to the span's start.
    pub fn end(&self, id: SpanId, vt: SimTime) {
        if id.0 == DROPPED_ID {
            return;
        }
        let wall = self.wall_now();
        let mut g = self.inner.lock();
        while let Some(top) = g.stack.pop() {
            let rec = &mut g.records[top as usize];
            rec.vt_end_us = vt.as_micros().max(rec.vt_start_us);
            rec.wall_end_ns = wall.max(rec.wall_start_ns);
            if top == id.0 {
                break;
            }
        }
    }

    /// Record an instant (zero virtual width) span at `vt`, nested
    /// under the open span and inheriting its track.
    pub fn instant(&self, name: &str, vt: SimTime) -> SpanId {
        let track = self.open_track();
        self.instant_on(track, name, vt)
    }

    /// Record an instant span on an explicit track.
    pub fn instant_on(&self, track: Track, name: &str, vt: SimTime) -> SpanId {
        let wall = self.wall_now();
        let mut g = self.inner.lock();
        if g.records.len() >= g.cap {
            g.dropped += 1;
            return SpanId(DROPPED_ID);
        }
        let id = g.records.len() as u64;
        let parent = g.stack.last().copied();
        g.records.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            track,
            vt_start_us: vt.as_micros(),
            vt_end_us: vt.as_micros(),
            wall_start_ns: wall,
            wall_end_ns: wall,
            attrs: Vec::new(),
        });
        SpanId(id)
    }

    /// Attach a `(key, value)` attribute to span `id`.
    pub fn attr(&self, id: SpanId, key: &str, value: impl Into<String>) {
        if id.0 == DROPPED_ID {
            return;
        }
        let mut g = self.inner.lock();
        if let Some(rec) = g.records.get_mut(id.0 as usize) {
            rec.attrs.push((key.to_string(), value.into()));
        }
    }

    fn open_track(&self) -> Track {
        let g = self.inner.lock();
        g.stack
            .last()
            .map(|&i| g.records[i as usize].track)
            .unwrap_or(Track::Driver)
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped past the record cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Snapshot every recorded span, in recording order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.lock().records.clone()
    }

    /// Render the recorded forest as Chrome trace-event JSON (see
    /// [`perfetto_trace`]).
    pub fn perfetto(&self) -> serde::Value {
        perfetto_trace(&self.records())
    }

    /// Fold the recorded forest into a [`ProfileSummary`].
    pub fn summary(&self) -> ProfileSummary {
        summarize(&self.records(), self.dropped())
    }
}

// ---------------------------------------------------------------------
// Perfetto / Chrome trace-event export
// ---------------------------------------------------------------------

fn event_base(ph: &str, ts: u64, tid: u64) -> serde::Map {
    let mut m = serde::Map::new();
    m.insert("ph", serde::Value::String(ph.to_string()));
    m.insert("ts", serde::Value::Number(serde::Number::U64(ts)));
    m.insert("pid", serde::Value::Number(serde::Number::U64(1)));
    m.insert("tid", serde::Value::Number(serde::Number::U64(tid)));
    m
}

fn args_object(attrs: &[(String, String)]) -> serde::Value {
    let mut args = serde::Map::new();
    for (k, v) in attrs {
        args.insert(k.clone(), serde::Value::String(v.clone()));
    }
    serde::Value::Object(args)
}

/// Export spans as a Chrome trace-event JSON object
/// (`{"traceEvents": [...]}`), the format `ui.perfetto.dev` and
/// `chrome://tracing` open directly.
///
/// Tracks become named threads of one process (`"M"` metadata events).
/// Range spans are emitted as `"B"`/`"E"` pairs by a depth-first walk
/// of the span forest, so begin/end events balance and nest exactly
/// like the recorded parent relationships; childless instants are
/// emitted as thread-scoped `"i"` events. Timestamps are **virtual**
/// microseconds — the deterministic simulator clock — so the same run
/// always exports byte-identical event timing.
pub fn perfetto_trace(records: &[SpanRecord]) -> serde::Value {
    let mut events: Vec<serde::Value> = Vec::new();

    // One thread_name metadata event per distinct track, tid-sorted.
    let mut tracks: Vec<Track> = Vec::new();
    for r in records {
        if !tracks.contains(&r.track) {
            tracks.push(r.track);
        }
    }
    tracks.sort_by_key(|t| t.tid());
    for t in &tracks {
        let mut m = serde::Map::new();
        m.insert("name", serde::Value::String("thread_name".to_string()));
        m.insert("ph", serde::Value::String("M".to_string()));
        m.insert("pid", serde::Value::Number(serde::Number::U64(1)));
        m.insert("tid", serde::Value::Number(serde::Number::U64(t.tid())));
        let mut args = serde::Map::new();
        args.insert("name", serde::Value::String(t.label()));
        m.insert("args", serde::Value::Object(args));
        events.push(serde::Value::Object(m));
    }

    // Children in recording order == virtual-time order per parent.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        match r.parent {
            Some(p) if (p as usize) < records.len() => children[p as usize].push(i),
            _ => roots.push(i),
        }
    }

    // Iterative DFS: `(index, entered)`.
    let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&i| (i, false)).collect();
    while let Some((i, entered)) = stack.pop() {
        let r = &records[i];
        if entered {
            events.push(serde::Value::Object(event_base(
                "E",
                r.vt_end_us,
                r.track.tid(),
            )));
            continue;
        }
        if r.is_instant() && children[i].is_empty() {
            let mut m = serde::Map::new();
            m.insert("name", serde::Value::String(r.name.clone()));
            let base = event_base("i", r.vt_start_us, r.track.tid());
            for (k, v) in base.iter() {
                m.insert(k, v.clone());
            }
            m.insert("s", serde::Value::String("t".to_string()));
            if !r.attrs.is_empty() {
                m.insert("args", args_object(&r.attrs));
            }
            events.push(serde::Value::Object(m));
            continue;
        }
        let mut m = serde::Map::new();
        m.insert("name", serde::Value::String(r.name.clone()));
        let base = event_base("B", r.vt_start_us, r.track.tid());
        for (k, v) in base.iter() {
            m.insert(k, v.clone());
        }
        if !r.attrs.is_empty() {
            m.insert("args", args_object(&r.attrs));
        }
        events.push(serde::Value::Object(m));
        stack.push((i, true));
        for &c in children[i].iter().rev() {
            stack.push((c, false));
        }
    }

    let mut top = serde::Map::new();
    top.insert("traceEvents", serde::Value::Array(events));
    serde::Value::Object(top)
}

/// Validate a value against the subset of the Chrome trace-event format
/// this module emits: a top-level `traceEvents` array whose events have
/// a known phase (`B`/`E`/`i`/`M`), numeric `ts`/`pid`/`tid` (except
/// `M`), balanced and properly nested `B`/`E` pairs per track, and
/// per-track non-decreasing `B`/`E` timestamps. Instants are exempt
/// from the ordering check: the format lets viewers sort events by
/// `ts`, and an async marker (a prefetch issued while the CPU span is
/// still open) legitimately carries an earlier timestamp than the
/// event emitted just before it.
pub fn validate_chrome_trace(v: &serde::Value) -> Result<(), String> {
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("missing traceEvents array")?;
    // Per-tid open B-span name stack and last timestamp.
    let mut open: Vec<(u64, Vec<String>)> = Vec::new();
    let mut last_ts: Vec<(u64, u64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_object().ok_or(format!("event {i} not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or(format!("event {i} missing ph"))?;
        match ph {
            "M" => continue,
            "B" | "E" | "i" => {}
            other => return Err(format!("event {i} has unknown phase {other:?}")),
        }
        let ts = obj
            .get("ts")
            .and_then(|t| t.as_u64())
            .ok_or(format!("event {i} missing numeric ts"))?;
        let tid = obj
            .get("tid")
            .and_then(|t| t.as_u64())
            .ok_or(format!("event {i} missing numeric tid"))?;
        if obj.get("pid").and_then(|p| p.as_u64()).is_none() {
            return Err(format!("event {i} missing numeric pid"));
        }
        if ph != "i" {
            match last_ts.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, prev)) => {
                    if ts < *prev {
                        return Err(format!(
                            "event {i}: ts {ts} goes backwards on tid {tid} (prev {prev})"
                        ));
                    }
                    *prev = ts;
                }
                None => last_ts.push((tid, ts)),
            }
        }
        let stack = match open.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                open.push((tid, Vec::new()));
                &mut open.last_mut().unwrap().1
            }
        };
        match ph {
            "B" => {
                let name = obj
                    .get("name")
                    .and_then(|n| n.as_str())
                    .ok_or(format!("event {i}: B without a name"))?;
                stack.push(name.to_string());
            }
            "E" => {
                if stack.pop().is_none() {
                    return Err(format!("event {i}: E without a matching B on tid {tid}"));
                }
            }
            "i" => {
                if obj.get("name").and_then(|n| n.as_str()).is_none() {
                    return Err(format!("event {i}: instant without a name"));
                }
            }
            _ => unreachable!(),
        }
    }
    for (tid, stack) in &open {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid} has {} unbalanced B event(s): {stack:?}",
                stack.len()
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Profile summary
// ---------------------------------------------------------------------

/// Virtual-time cost of one phase (all spans sharing a name).
/// Deterministic: derived solely from virtual timestamps.
///
/// Exclusive virtual time is *aggregate stream time*: concurrently
/// simulated spans (two streams stepping over the same virtual
/// interval) each count their own duration, so phase exclusives can sum
/// past the root spans' total — exactly like CPU-seconds exceeding
/// elapsed seconds on a multicore host. Wall-clock exclusives (the
/// recording host is single-threaded) partition the total exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase (span) name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Inclusive virtual time (children included), microseconds.
    pub vt_incl_us: u64,
    /// Exclusive virtual time (children subtracted), microseconds.
    pub vt_excl_us: u64,
}

/// One collapsed flamegraph stack: the `;`-joined path from root to a
/// span, with its aggregate exclusive virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackLine {
    /// `root;child;leaf` path.
    pub stack: String,
    /// Spans aggregated into this line.
    pub count: u64,
    /// Aggregate exclusive virtual time, microseconds.
    pub vt_excl_us: u64,
}

/// One of the individually hottest spans by virtual duration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotSpan {
    /// Span name.
    pub name: String,
    /// Display track.
    pub track: Track,
    /// Virtual start, microseconds.
    pub vt_start_us: u64,
    /// Virtual duration, microseconds.
    pub vt_us: u64,
}

/// Wall-clock cost of one phase. Host-dependent; never gated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallPhase {
    /// Phase (span) name.
    pub name: String,
    /// Inclusive wall time, nanoseconds.
    pub incl_ns: u64,
    /// Exclusive wall time, nanoseconds.
    pub excl_ns: u64,
}

/// The wall-clock side of a profile, quarantined under its own key so
/// deterministic comparisons can strip it in one move.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallProfile {
    /// Total wall time across root spans, nanoseconds.
    pub total_ns: u64,
    /// Per-phase wall costs. Exclusive times partition the roots'
    /// inclusive time, so they sum to `total_ns`.
    pub phases: Vec<WallPhase>,
}

/// A folded profile: per-phase costs, collapsed stacks, hottest spans.
/// Everything outside [`ProfileSummary::wall`] is derived from virtual
/// time only and is byte-identical across machines and `--jobs` values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Spans recorded.
    pub spans: u64,
    /// Spans dropped past the record cap.
    pub dropped: u64,
    /// Total inclusive virtual time across root spans, microseconds.
    pub total_vt_us: u64,
    /// Per-phase virtual costs, hottest (by exclusive time) first.
    pub phases: Vec<PhaseStat>,
    /// Collapsed flamegraph stacks, sorted by path.
    pub stacks: Vec<StackLine>,
    /// The [`HOTTEST_SPANS`] individually longest spans.
    pub hottest: Vec<HotSpan>,
    /// Wall-clock costs (`None` once stripped for deterministic
    /// comparison).
    pub wall: Option<WallProfile>,
}

impl ProfileSummary {
    /// Drop the wall-clock section, leaving only deterministic
    /// virtual-time fields — the form compared across `--jobs` values.
    pub fn virtual_only(mut self) -> Self {
        self.wall = None;
        self
    }

    /// Render the collapsed stacks in flamegraph.pl's folded format
    /// (`path;to;frame <exclusive-µs>` per line).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str(&s.stack);
            out.push(' ');
            out.push_str(&s.vt_excl_us.to_string());
            out.push('\n');
        }
        out
    }
}

/// Fold span records into a [`ProfileSummary`]. Exclusive time is a
/// span's duration minus its direct children's inclusive durations
/// (saturating); phase tables aggregate by span name, stacks by full
/// root-to-span path.
pub fn summarize(records: &[SpanRecord], dropped: u64) -> ProfileSummary {
    let n = records.len();
    let mut child_vt = vec![0u64; n];
    let mut child_wall = vec![0u64; n];
    for r in records {
        if let Some(p) = r.parent {
            if (p as usize) < n {
                child_vt[p as usize] += r.vt_us();
                child_wall[p as usize] += r.wall_ns();
            }
        }
    }

    // Root-to-span paths, built in one pass (parents precede children).
    let mut paths: Vec<String> = Vec::with_capacity(n);
    for r in records {
        let path = match r.parent {
            Some(p) if (p as usize) < paths.len() => {
                format!("{};{}", paths[p as usize], r.name)
            }
            _ => r.name.clone(),
        };
        paths.push(path);
    }

    let mut phases: Vec<PhaseStat> = Vec::new();
    let mut wall_phases: Vec<WallPhase> = Vec::new();
    let mut stacks: Vec<StackLine> = Vec::new();
    let mut total_vt = 0u64;
    let mut total_wall = 0u64;
    for (i, r) in records.iter().enumerate() {
        let vt_excl = r.vt_us().saturating_sub(child_vt[i]);
        let wall_excl = r.wall_ns().saturating_sub(child_wall[i]);
        if r.parent.is_none() {
            total_vt += r.vt_us();
            total_wall += r.wall_ns();
        }
        match phases.iter_mut().find(|p| p.name == r.name) {
            Some(p) => {
                p.count += 1;
                p.vt_incl_us += r.vt_us();
                p.vt_excl_us += vt_excl;
            }
            None => phases.push(PhaseStat {
                name: r.name.clone(),
                count: 1,
                vt_incl_us: r.vt_us(),
                vt_excl_us: vt_excl,
            }),
        }
        match wall_phases.iter_mut().find(|p| p.name == r.name) {
            Some(p) => {
                p.incl_ns += r.wall_ns();
                p.excl_ns += wall_excl;
            }
            None => wall_phases.push(WallPhase {
                name: r.name.clone(),
                incl_ns: r.wall_ns(),
                excl_ns: wall_excl,
            }),
        }
        match stacks.iter_mut().find(|s| s.stack == paths[i]) {
            Some(s) => {
                s.count += 1;
                s.vt_excl_us += vt_excl;
            }
            None => stacks.push(StackLine {
                stack: paths[i].clone(),
                count: 1,
                vt_excl_us: vt_excl,
            }),
        }
    }
    phases.sort_by(|a, b| b.vt_excl_us.cmp(&a.vt_excl_us).then(a.name.cmp(&b.name)));
    wall_phases.sort_by(|a, b| {
        let pa = phases.iter().position(|p| p.name == a.name);
        let pb = phases.iter().position(|p| p.name == b.name);
        pa.cmp(&pb)
    });
    stacks.sort_by(|a, b| a.stack.cmp(&b.stack));

    let mut hottest: Vec<&SpanRecord> = records.iter().collect();
    hottest.sort_by(|a, b| b.vt_us().cmp(&a.vt_us()).then(a.id.cmp(&b.id)));
    let hottest = hottest
        .into_iter()
        .take(HOTTEST_SPANS)
        .map(|r| HotSpan {
            name: r.name.clone(),
            track: r.track,
            vt_start_us: r.vt_start_us,
            vt_us: r.vt_us(),
        })
        .collect();

    ProfileSummary {
        spans: n as u64,
        dropped,
        total_vt_us: total_vt,
        phases,
        stacks,
        hottest,
        wall: Some(WallProfile {
            total_ns: total_wall,
            phases: wall_phases,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn spans_nest_via_the_open_stack_across_tracks() {
        let p = SpanProfiler::default();
        let run = p.begin(Track::Driver, "run", t(0));
        let step = p.begin(Track::Stream(0), "scan.step", t(10));
        let fetch = p.begin_child("extent.fetch", t(10));
        let miss = p.instant("io.miss", t(10));
        p.attr(miss, "device", "0");
        let _place = p.instant_on(Track::Manager, "mgr.place", t(10));
        p.end(fetch, t(30));
        p.end(step, t(40));
        p.end(run, t(50));

        let recs = p.records();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[1].parent, Some(0));
        assert_eq!(recs[2].parent, Some(1));
        assert_eq!(recs[2].track, Track::Stream(0), "child inherits track");
        assert_eq!(recs[3].parent, Some(2), "instant parents to open span");
        assert_eq!(recs[4].parent, Some(2));
        assert_eq!(recs[4].track, Track::Manager);
        assert_eq!(recs[3].attrs, vec![("device".to_string(), "0".to_string())]);
        assert!(recs[3].is_instant());
        assert_eq!(recs[1].vt_us(), 30);
    }

    #[test]
    fn end_closes_dangling_children() {
        let p = SpanProfiler::default();
        let outer = p.begin(Track::Driver, "outer", t(0));
        let _inner = p.begin(Track::Driver, "inner", t(5));
        // Error path: outer ends without the inner being closed.
        p.end(outer, t(20));
        let recs = p.records();
        assert_eq!(recs[1].vt_end_us, 20);
        assert_eq!(recs[0].vt_end_us, 20);
        // Stack is empty again: a new span is a root.
        let next = p.begin(Track::Driver, "next", t(30));
        p.end(next, t(31));
        assert_eq!(p.records()[2].parent, None);
    }

    #[test]
    fn record_cap_drops_and_counts() {
        let p = SpanProfiler::new(2);
        let a = p.begin(Track::Driver, "a", t(0));
        let _b = p.instant("i", t(1));
        let c = p.begin(Track::Driver, "c", t(2));
        p.attr(c, "k", "v");
        p.end(c, t(3));
        p.end(a, t(4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.dropped(), 1);
        // The dropped id is inert everywhere.
        assert_eq!(c, SpanId::none());
    }

    #[test]
    fn perfetto_export_validates_and_balances() {
        let p = SpanProfiler::default();
        let run = p.begin(Track::Driver, "run", t(0));
        for step in 0..3u64 {
            let s = p.begin(Track::Stream(0), "scan.step", t(step * 100));
            let f = p.begin_child("extent.fetch", t(step * 100));
            p.instant("io.miss", t(step * 100));
            p.end(f, t(step * 100 + 40));
            let c = p.begin_child("cpu.process", t(step * 100 + 40));
            p.end(c, t(step * 100 + 70));
            p.end(s, t(step * 100 + 70));
        }
        p.end(run, t(300));

        let trace = p.perfetto();
        validate_chrome_trace(&trace).expect("valid trace");
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata + (run B/E) + 3 * (step B/E + fetch B/E + miss i + cpu B/E)
        assert_eq!(events.len(), 2 + 2 + 3 * 7);
        let json = serde_json::to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"stream 0\""));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace(&serde::Value::Null).is_err());
        // Unbalanced: B without E.
        let p = SpanProfiler::default();
        let mut recs = {
            let a = p.begin(Track::Driver, "a", t(0));
            p.end(a, t(10));
            p.records()
        };
        recs[0].vt_end_us = 5;
        let good = perfetto_trace(&recs);
        assert!(validate_chrome_trace(&good).is_ok());
        let mut evs = good
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        evs.pop(); // drop the E
        let mut m = serde::Map::new();
        m.insert("traceEvents", serde::Value::Array(evs));
        let err = validate_chrome_trace(&serde::Value::Object(m)).unwrap_err();
        assert!(err.contains("unbalanced"), "got: {err}");
    }

    #[test]
    fn summary_partitions_time_and_strips_wall() {
        let p = SpanProfiler::default();
        let run = p.begin(Track::Driver, "run", t(0));
        let s1 = p.begin(Track::Stream(0), "scan.step", t(0));
        p.end(s1, t(60));
        let s2 = p.begin(Track::Stream(1), "scan.step", t(60));
        let f = p.begin_child("extent.fetch", t(60));
        p.end(f, t(90));
        p.end(s2, t(100));
        p.end(run, t(100));

        let sum = p.summary();
        assert_eq!(sum.spans, 4);
        assert_eq!(sum.total_vt_us, 100);
        let run_phase = sum.phases.iter().find(|ph| ph.name == "run").unwrap();
        assert_eq!(run_phase.vt_incl_us, 100);
        assert_eq!(run_phase.vt_excl_us, 0, "children cover the whole run");
        let step = sum.phases.iter().find(|ph| ph.name == "scan.step").unwrap();
        assert_eq!(step.count, 2);
        assert_eq!(step.vt_incl_us, 100);
        assert_eq!(step.vt_excl_us, 70);
        // Exclusive virtual time partitions the total.
        let excl_sum: u64 = sum.phases.iter().map(|ph| ph.vt_excl_us).sum();
        assert_eq!(excl_sum, sum.total_vt_us);
        // Wall exclusive partitions wall total the same way.
        let wall = sum.wall.as_ref().unwrap();
        let wall_excl: u64 = wall.phases.iter().map(|ph| ph.excl_ns).sum();
        assert_eq!(wall_excl, wall.total_ns);
        // Collapsed stacks: full paths with exclusive µs.
        let folded = sum.collapsed();
        assert!(folded.contains("run;scan.step;extent.fetch 30"), "{folded}");
        assert!(folded.contains("run;scan.step 70"), "{folded}");
        // Stripping wall leaves deterministic fields intact.
        let stripped = sum.clone().virtual_only();
        assert!(stripped.wall.is_none());
        assert_eq!(stripped.phases, sum.phases);
        assert_eq!(stripped.stacks, sum.stacks);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let p = SpanProfiler::default();
        let a = p.begin(Track::Driver, "run", t(0));
        p.instant_on(Track::Manager, "mgr.place", t(1));
        p.end(a, t(10));
        let sum = p.summary();
        let json = serde_json::to_string(&sum).unwrap();
        let back: ProfileSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sum);
        let stripped = sum.virtual_only();
        let json = serde_json::to_string(&stripped).unwrap();
        let back: ProfileSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stripped);
    }
}
