//! Anchors, offsets, and the partial order between scans (§5.3).
//!
//! Index-scan locations cannot be compared by inspection: "the RIDs are
//! not necessarily accessed in any monotonic order and so the distance is
//! not simply the difference between two SISCANs' scan locations"
//! (Figure 5 of the paper). Instead, every scan carries an **anchor** — a
//! fixed reference location — and an **anchor offset** — the number of
//! pages it has moved since that anchor. Scans that share an anchor form
//! an *anchor group*; within a group, distances are offset differences
//! and a total order exists. Across groups nothing is known, which is the
//! paper's partial order `º` (Figure 6).
//!
//! Anchors are created in three situations:
//!
//! * a scan starts by itself → fresh anchor, offset 0,
//! * a scan starts at another scan's location (placement) → it adopts
//!   that scan's anchor and offset,
//! * a scan's location update lands exactly on another scan's current
//!   location → the two groups merge (the scan adopts the other's anchor
//!   and offset). §7.1 describes this merge; we use the other scan's
//!   *current* offset because location coincidence means the two scans
//!   are at the same distance from the adopted anchor.

use serde::{Deserialize, Serialize};

/// Identifier of an anchor (one per anchor group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AnchorId(pub u64);

/// Issues fresh anchors.
#[derive(Debug, Default)]
pub(crate) struct AnchorTable {
    next: u64,
}

impl AnchorTable {
    pub(crate) fn fresh(&mut self) -> AnchorId {
        let id = AnchorId(self.next);
        self.next += 1;
        id
    }
}

/// Distance in pages between two scans, if they are comparable (same
/// anchor group). `None` across groups — the partial order gives us no
/// information there.
pub fn distance(a: (AnchorId, i64), b: (AnchorId, i64)) -> Option<u64> {
    if a.0 == b.0 {
        Some(a.1.abs_diff(b.1))
    } else {
        None
    }
}

/// The partial order `º`: `Some(Less)` if `a` is behind `b` in scan
/// direction, `None` if the scans are in different anchor groups.
pub fn partial_cmp(a: (AnchorId, i64), b: (AnchorId, i64)) -> Option<std::cmp::Ordering> {
    if a.0 == b.0 {
        Some(a.1.cmp(&b.1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    /// The worked example of Figure 5: scans A and B share an anchor at
    /// (key "x", RID 2); A's anchor offset is 2 and B's is 7, so their
    /// distance is 5 — even though their RIDs suggest 3.
    #[test]
    fn figure5_anchor_offset_distance() {
        let anchor = AnchorId(0);
        let scan_a = (anchor, 2i64);
        let scan_b = (anchor, 7i64);
        assert_eq!(distance(scan_a, scan_b), Some(5));
        assert_eq!(partial_cmp(scan_a, scan_b), Some(Ordering::Less));
    }

    /// Figure 6: two anchor groups. Within a group the order is known;
    /// across groups it is not (that is what makes it a *partial* order).
    #[test]
    fn figure6_partial_order() {
        let g1 = AnchorId(1);
        let g2 = AnchorId(2);
        let a = (g1, 10i64);
        let b = (g1, 50i64);
        let c = (g1, 60i64);
        let d = (g1, 75i64);
        let e = (g2, 20i64);
        let f = (g2, 40i64);
        // A º B, B º C, C º D within group 1; E º F within group 2.
        assert_eq!(partial_cmp(a, b), Some(Ordering::Less));
        assert_eq!(partial_cmp(b, c), Some(Ordering::Less));
        assert_eq!(partial_cmp(c, d), Some(Ordering::Less));
        assert_eq!(partial_cmp(e, f), Some(Ordering::Less));
        // Distances from Figure 6 / §7.2: d(A,B)=40, d(B,C)=10, d(C,D)=15,
        // d(E,F)=20.
        assert_eq!(distance(a, b), Some(40));
        assert_eq!(distance(b, c), Some(10));
        assert_eq!(distance(c, d), Some(15));
        assert_eq!(distance(e, f), Some(20));
        // Nothing is known across groups.
        assert_eq!(partial_cmp(a, e), None);
        assert_eq!(distance(d, f), None);
    }

    #[test]
    fn anchor_table_issues_unique_ids() {
        let mut t = AnchorTable::default();
        let a = t.fresh();
        let b = t.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn distance_is_symmetric() {
        let g = AnchorId(9);
        assert_eq!(distance((g, -5), (g, 10)), Some(15));
        assert_eq!(distance((g, 10), (g, -5)), Some(15));
    }
}
