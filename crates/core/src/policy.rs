//! Pluggable sharing policies: *how* concurrent scans share pages.
//!
//! The papers' grouping+throttling machinery is one point in a design
//! space that *From Cooperative Scans to Predictive Buffer Management*
//! (Świtakowski, Boncz, Zukowski) lays out more broadly: simpler engines
//! attach a new scan to a running one, column stores circulate a single
//! elevator cursor per table, and the paper under reproduction adds
//! placement scoring, leader/trailer throttling, and page priorities.
//!
//! This module carves that axis out of [`crate::manager`]: a
//! [`SharingPolicy`] decides **where a new scan starts** and **which of
//! the manager's feedback mechanisms are active**, while the manager
//! keeps the bookkeeping every policy needs (anchors, groups, speeds,
//! statistics, provenance). Three implementations ship:
//!
//! * [`GroupingPolicy`] — the default; the paper's §6.3 placement plus
//!   throttling and page re-prioritization. Runs under this policy are
//!   byte-identical to the pre-refactor code (a property pinned by CI).
//! * [`AttachPolicy`] — a new scan jumps to the *newest* compatible
//!   scan's position, with no throttling and no priority hints; the
//!   simplest sharing found in contemporary engines.
//! * [`ElevatorPolicy`] — one circulating read cursor per table: a new
//!   scan attaches at the front-most ongoing scan (the cursor), or where
//!   the last scan left off when the table is idle, and wraps around.
//!
//! Select a policy per run via [`SharingConfig::policy`] in the workload
//! spec, or `scanshare run --policy grouping|attach|elevator` on the
//! command line.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::anchor::AnchorId;
use crate::config::{PlacementStrategy, SharingConfig};
use crate::decision::PlacementCandidate;
use crate::manager::{StartDecision, UNKNOWN_POS};
use crate::placement::{best_start_optimal, best_start_practical, Trace};
use crate::scan::{Location, ScanDesc, ScanId, ScanKind};

/// Which sharing policy a run uses. Selected in [`SharingConfig::policy`]
/// (and therefore in workload specs) or via `run --policy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SharingPolicyKind {
    /// The paper's grouping+throttling machinery (the default).
    #[default]
    Grouping,
    /// Attach to the newest compatible ongoing scan; no throttling.
    Attach,
    /// One circulating read cursor per table; scans attach at the cursor
    /// and wrap.
    Elevator,
}

impl SharingPolicyKind {
    /// The CLI spelling of the policy (`grouping`, `attach`, `elevator`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SharingPolicyKind::Grouping => "grouping",
            SharingPolicyKind::Attach => "attach",
            SharingPolicyKind::Elevator => "elevator",
        }
    }
}

impl std::fmt::Display for SharingPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SharingPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "grouping" => Ok(SharingPolicyKind::Grouping),
            "attach" => Ok(SharingPolicyKind::Attach),
            "elevator" => Ok(SharingPolicyKind::Elevator),
            other => Err(format!(
                "unknown policy '{other}' (expected grouping, attach, or elevator)"
            )),
        }
    }
}

/// Snapshot of one ongoing scan, as a policy sees it. A read-only copy of
/// the manager's internal per-scan state (§5.2's attribute set) so that
/// policies can be implemented outside the manager without access to its
/// private bookkeeping.
#[derive(Debug, Clone)]
pub struct ScanView {
    /// The scan's id (ascending in start order — higher id = newer scan).
    pub id: ScanId,
    /// The scan's static description (object, kind, key range, estimates).
    pub desc: ScanDesc,
    /// Last reported location.
    pub location: Location,
    /// Estimated pages left in the scan range.
    pub remaining_pages: u64,
    /// Recent speed in pages per second.
    pub speed: f64,
    /// The anchor group the scan's position is expressed in.
    pub anchor: AnchorId,
    /// Position relative to the anchor, in pages.
    pub anchor_offset: i64,
}

/// Where the most recently finished scan on the target object stopped —
/// the "join the leftovers" input (Figure 13 line 2).
#[derive(Debug, Clone)]
pub struct FinishedView {
    /// Its final location.
    pub location: Location,
    /// Table or index scan.
    pub kind: ScanKind,
    /// Global churn counter when it ended; compared against
    /// [`PolicyView::total_pages_advanced`] to decide whether its trailing
    /// pages can still be in the pool.
    pub churn_at_end: u64,
}

/// Everything a [`SharingPolicy`] may consult when placing a new scan: a
/// snapshot of the manager's state taken under its lock at `start_scan`
/// time.
#[derive(Debug, Clone)]
pub struct PolicyView {
    /// The configuration in effect.
    pub cfg: SharingConfig,
    /// All ongoing scans (every object, every kind), ascending by id.
    pub scans: Vec<ScanView>,
    /// The most recently finished scan on the new scan's object, if any.
    pub last_finished: Option<FinishedView>,
    /// Total pages advanced by all scans since the manager was created —
    /// the buffer-churn proxy for the leftover-cache check.
    pub total_pages_advanced: u64,
}

/// A sharing policy: decides where a new scan starts and which of the
/// manager's feedback mechanisms (throttling, page priorities) apply.
///
/// Implementations must be deterministic: given the same [`PolicyView`]
/// and descriptor they must return the same decision and push the same
/// candidates, or runs stop being reproducible.
pub trait SharingPolicy: Send + Sync {
    /// Which policy this is (for provenance and reports).
    fn kind(&self) -> SharingPolicyKind;

    /// Decide where a new scan described by `desc` starts. Every start
    /// location scored along the way — winners and rejected candidates
    /// alike — is appended to `candidates` so the decision-provenance
    /// event carries the full field the policy chose from.
    fn place(
        &self,
        view: &PolicyView,
        desc: &ScanDesc,
        candidates: &mut Vec<PlacementCandidate>,
    ) -> StartDecision;

    /// Whether group leaders are throttled to keep groups together
    /// (still subject to [`SharingConfig::enable_throttling`]).
    fn throttles(&self) -> bool;

    /// Whether leader/trailer page re-prioritization applies (still
    /// subject to [`SharingConfig::enable_priorities`]).
    fn prioritizes(&self) -> bool;

    /// Minimum absolute saving (pages) a placement candidate must offer,
    /// as recorded on placement provenance events.
    fn placement_threshold(&self, cfg: &SharingConfig) -> f64;

    /// Push delivery only: should a new consumer attach to a group
    /// driver that has already delivered `missed_pages` of its
    /// `range_pages`-page lap, replaying the missed prefix through a
    /// private pull cursor — or found a fresh driver of its own?
    ///
    /// The default mirrors the grouping policy's sharing-potential
    /// instinct: attach while the shared remainder dwarfs the private
    /// replay (missed prefix at most a fifth of the lap — the replay is
    /// pure duplicate fixing, so keeping it small is what holds a
    /// group's fixes-per-page near one). Policies that attach
    /// unconditionally in pull mode override this to do the same in
    /// push mode.
    fn attach_push(&self, missed_pages: u64, range_pages: u64) -> bool {
        missed_pages.saturating_mul(5) <= range_pages
    }
}

/// Build the policy implementation for `kind`.
pub fn policy_for(kind: SharingPolicyKind) -> Box<dyn SharingPolicy> {
    match kind {
        SharingPolicyKind::Grouping => Box::new(GroupingPolicy),
        SharingPolicyKind::Attach => Box::new(AttachPolicy),
        SharingPolicyKind::Elevator => Box::new(ElevatorPolicy),
    }
}

/// Ongoing scans a new scan could share pages with: same object, same
/// kind, current key inside the new scan's range (a scan whose location
/// is outside the range cannot be joined — §6). `view.scans` is sorted by
/// id, so the result is too.
fn compatible<'a>(view: &'a PolicyView, desc: &ScanDesc) -> Vec<&'a ScanView> {
    view.scans
        .iter()
        .filter(|s| {
            s.desc.object == desc.object
                && s.desc.kind == desc.kind
                && desc.contains_key(s.location.key)
        })
        .collect()
}

/// The paper's policy: §6.3 placement (with the optimal and
/// always-attach strategy variants of [`PlacementStrategy`]), leader
/// throttling, and page re-prioritization.
#[derive(Debug, Default, Clone, Copy)]
pub struct GroupingPolicy;

impl SharingPolicy for GroupingPolicy {
    fn kind(&self) -> SharingPolicyKind {
        SharingPolicyKind::Grouping
    }

    /// The placement logic of §6.3 (Figure 13), generalized over scan
    /// kinds: collect the anchor groups on the same object that overlap
    /// the new scan's key range, score each member's current location
    /// with `calculateReads`, and pick the best-saving candidate. With no
    /// ongoing scans, fall back to the most recently finished scan's
    /// location.
    fn place(
        &self,
        view: &PolicyView,
        desc: &ScanDesc,
        candidates: &mut Vec<PlacementCandidate>,
    ) -> StartDecision {
        let cfg = &view.cfg;
        let members = compatible(view, desc);

        if members.is_empty() {
            // Figure 13 line 2: join the last finished scan's leftovers.
            let any_ongoing = view
                .scans
                .iter()
                .any(|s| s.desc.object == desc.object && s.desc.kind == desc.kind);
            if !any_ongoing {
                if let Some(fin) = &view.last_finished {
                    let still_cached =
                        view.total_pages_advanced.saturating_sub(fin.churn_at_end) < cfg.pool_pages;
                    if still_cached
                        && fin.kind == desc.kind
                        && desc.contains_key(fin.location.key)
                        && fin.location.pos != UNKNOWN_POS
                    {
                        // Leftover-cache candidate: at most a pool's worth
                        // of the finished scan's trailing pages survives.
                        let saving = cfg.pool_pages.min(desc.est_pages) as f64;
                        candidates.push(PlacementCandidate {
                            scan: None,
                            location: fin.location,
                            saving_pages: saving,
                            score: saving / desc.est_pages.max(1) as f64,
                            speed: 0.0,
                        });
                        return StartDecision::JoinAt {
                            location: fin.location,
                            scan: None,
                            back_up_pages: cfg.pool_pages,
                        };
                    }
                }
            }
            return StartDecision::FromStart;
        }

        // Attach strategy (QPipe baseline): join the ongoing scan with
        // the most remaining work, unconditionally.
        if cfg.placement_strategy == PlacementStrategy::AlwaysAttach {
            for m in members.iter().filter(|m| m.location.pos != UNKNOWN_POS) {
                let saving = m.remaining_pages.min(desc.est_pages) as f64;
                candidates.push(PlacementCandidate {
                    scan: Some(m.id),
                    location: m.location,
                    saving_pages: saving,
                    score: saving / desc.est_pages.max(1) as f64,
                    speed: m.speed,
                });
            }
            let target = members
                .iter()
                .filter(|m| m.location.pos != UNKNOWN_POS)
                .max_by_key(|m| (m.remaining_pages, std::cmp::Reverse(m.id)));
            return match target {
                Some(m) => StartDecision::JoinAt {
                    location: m.location,
                    scan: Some(m.id),
                    back_up_pages: 0,
                },
                None => StartDecision::FromStart,
            };
        }

        // Optimal strategy: table-scan locations form a known linear
        // axis (page numbers), so the O(|S|^3) interesting-locations
        // search of §6.2 can place the new scan anywhere in its range,
        // not just at a member's position.
        if cfg.placement_strategy == PlacementStrategy::Optimal && desc.kind == ScanKind::Table {
            let traces: Vec<Trace> = members
                .iter()
                .map(|m| {
                    Trace::new(
                        m.location.pos as f64,
                        m.speed,
                        (m.location.pos + m.remaining_pages) as f64,
                    )
                })
                .collect();
            if let Some(c) = best_start_optimal(
                &traces,
                desc.est_speed(),
                desc.est_pages as f64,
                cfg.pool_pages as f64,
                (desc.start_key as f64, desc.end_key as f64),
            ) {
                let saving = c.estimate.baseline - c.estimate.reads;
                let page = c.start.round().max(0.0) as u64;
                candidates.push(PlacementCandidate {
                    scan: None,
                    location: Location::new(page as i64, page),
                    saving_pages: saving,
                    score: c.estimate.savings_per_page(),
                    speed: 0.0,
                });
                if saving >= cfg.extent_pages as f64 {
                    return StartDecision::JoinAt {
                        location: Location::new(page as i64, page),
                        scan: None,
                        back_up_pages: 0,
                    };
                }
            }
            return StartDecision::FromStart;
        }

        // Evaluate per anchor group (offsets are only comparable within a
        // group), then take the best savings across groups.
        let mut by_group: HashMap<AnchorId, Vec<&ScanView>> = HashMap::new();
        for m in &members {
            by_group.entry(m.anchor).or_default().push(m);
        }
        let mut groups: Vec<_> = by_group.into_iter().collect();
        groups.sort_by_key(|(a, _)| *a);

        let cand_speed = desc.est_speed();
        let mut best: Option<(f64, ScanId, Location)> = None;
        for (_, group_members) in groups {
            let traces: Vec<Trace> = group_members
                .iter()
                .map(|m| {
                    Trace::new(
                        m.anchor_offset as f64,
                        m.speed,
                        (m.anchor_offset + m.remaining_pages as i64) as f64,
                    )
                })
                .collect();
            if let Some(c) = best_start_practical(
                &traces,
                cand_speed,
                desc.est_pages as f64,
                cfg.pool_pages as f64,
            ) {
                // Require the join to save at least one extent's worth of
                // reads in absolute terms: a scan about to finish offers a
                // positive but useless per-page score over a tiny span
                // (Figure 7's "sharing duration is limited" case).
                let absolute_saving = c.estimate.baseline - c.estimate.reads;
                let member = group_members[c.member];
                let score = c.estimate.savings_per_page();
                candidates.push(PlacementCandidate {
                    scan: Some(member.id),
                    location: member.location,
                    saving_pages: absolute_saving,
                    score,
                    speed: member.speed,
                });
                if absolute_saving < cfg.extent_pages as f64 {
                    continue;
                }
                if best.map(|(s, _, _)| score > s).unwrap_or(true) {
                    best = Some((score, member.id, member.location));
                }
            }
        }
        match best {
            Some((_, scan, location)) if location.pos != UNKNOWN_POS => StartDecision::JoinAt {
                location,
                scan: Some(scan),
                back_up_pages: 0,
            },
            _ => StartDecision::FromStart,
        }
    }

    fn throttles(&self) -> bool {
        true
    }

    fn prioritizes(&self) -> bool {
        true
    }

    /// `AlwaysAttach` joins unconditionally, so its threshold is zero;
    /// the scoring strategies require one extent's worth of saving.
    fn placement_threshold(&self, cfg: &SharingConfig) -> f64 {
        if cfg.enable_placement && cfg.placement_strategy != PlacementStrategy::AlwaysAttach {
            cfg.extent_pages as f64
        } else {
            0.0
        }
    }
}

/// Baseline attach policy: a new scan jumps to the **newest** compatible
/// scan's position — no sharing-potential estimation, no throttling, no
/// page priorities. The newest scan is the one whose already-read pages
/// are most likely still pool-resident, which is the entire intuition of
/// attach-style sharing; contrast with [`PlacementStrategy::AlwaysAttach`]
/// inside the grouping policy, which attaches to the scan with the most
/// *remaining work*.
#[derive(Debug, Default, Clone, Copy)]
pub struct AttachPolicy;

impl SharingPolicy for AttachPolicy {
    fn kind(&self) -> SharingPolicyKind {
        SharingPolicyKind::Attach
    }

    fn place(
        &self,
        view: &PolicyView,
        desc: &ScanDesc,
        candidates: &mut Vec<PlacementCandidate>,
    ) -> StartDecision {
        let members = compatible(view, desc);
        for m in members.iter().filter(|m| m.location.pos != UNKNOWN_POS) {
            let saving = m.remaining_pages.min(desc.est_pages) as f64;
            candidates.push(PlacementCandidate {
                scan: Some(m.id),
                location: m.location,
                saving_pages: saving,
                // Rank by recency: ids ascend in start order, so the
                // newest scan scores highest.
                score: m.id.0 as f64,
                speed: m.speed,
            });
        }
        match members
            .iter()
            .filter(|m| m.location.pos != UNKNOWN_POS)
            .max_by_key(|m| m.id)
        {
            Some(m) => StartDecision::JoinAt {
                location: m.location,
                scan: Some(m.id),
                back_up_pages: 0,
            },
            None => StartDecision::FromStart,
        }
    }

    fn throttles(&self) -> bool {
        false
    }

    fn prioritizes(&self) -> bool {
        false
    }

    fn placement_threshold(&self, _cfg: &SharingConfig) -> f64 {
        0.0
    }

    /// Attach-style sharing attaches unconditionally in pull mode, so it
    /// rides any driver in push mode too, whatever the missed prefix.
    fn attach_push(&self, _missed_pages: u64, _range_pages: u64) -> bool {
        true
    }
}

/// Elevator policy: one circulating read cursor per table. The cursor is
/// materialized by the front-most ongoing scan (largest position); a new
/// scan attaches there and relies on the engine's wrap-around phase to
/// cover the part behind the cursor. When the table is idle the cursor
/// rests where the last scan ended, so the next scan resumes from that
/// position regardless of cache churn — elevator ordering is positional,
/// not cache-estimated. No throttling and no page priorities: the cursor
/// never waits for stragglers.
///
/// Index-scan positions are only comparable within an anchor group, so
/// for index scans "front-most" is an approximation based on the reported
/// physical position; table scans (where positions are page numbers) are
/// the policy's home turf.
#[derive(Debug, Default, Clone, Copy)]
pub struct ElevatorPolicy;

impl SharingPolicy for ElevatorPolicy {
    fn kind(&self) -> SharingPolicyKind {
        SharingPolicyKind::Elevator
    }

    /// The elevator cursor *is* a push driver: scans always ride it and
    /// cover what they missed on the wrap, so push attach is
    /// unconditional here too.
    fn attach_push(&self, _missed_pages: u64, _range_pages: u64) -> bool {
        true
    }

    fn place(
        &self,
        view: &PolicyView,
        desc: &ScanDesc,
        candidates: &mut Vec<PlacementCandidate>,
    ) -> StartDecision {
        let members = compatible(view, desc);
        for m in members.iter().filter(|m| m.location.pos != UNKNOWN_POS) {
            let saving = m.remaining_pages.min(desc.est_pages) as f64;
            candidates.push(PlacementCandidate {
                scan: Some(m.id),
                location: m.location,
                saving_pages: saving,
                // Rank by position: the cursor is the front-most scan.
                score: m.location.pos as f64,
                speed: m.speed,
            });
        }
        // The cursor: the front-most ongoing scan (ties broken toward the
        // older scan, which has been defining the cursor for longer).
        if let Some(m) = members
            .iter()
            .filter(|m| m.location.pos != UNKNOWN_POS)
            .max_by_key(|m| (m.location.pos, std::cmp::Reverse(m.id)))
        {
            return StartDecision::JoinAt {
                location: m.location,
                scan: Some(m.id),
                back_up_pages: 0,
            };
        }
        // Idle table: the cursor rests where the last scan stopped.
        if let Some(fin) = &view.last_finished {
            if fin.kind == desc.kind
                && desc.contains_key(fin.location.key)
                && fin.location.pos != UNKNOWN_POS
            {
                candidates.push(PlacementCandidate {
                    scan: None,
                    location: fin.location,
                    saving_pages: 0.0,
                    score: fin.location.pos as f64,
                    speed: 0.0,
                });
                return StartDecision::JoinAt {
                    location: fin.location,
                    scan: None,
                    back_up_pages: 0,
                };
            }
        }
        StartDecision::FromStart
    }

    fn throttles(&self) -> bool {
        false
    }

    fn prioritizes(&self) -> bool {
        false
    }

    fn placement_threshold(&self, _cfg: &SharingConfig) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in [
            SharingPolicyKind::Grouping,
            SharingPolicyKind::Attach,
            SharingPolicyKind::Elevator,
        ] {
            assert_eq!(SharingPolicyKind::from_str(kind.as_str()), Ok(kind));
        }
        assert!(SharingPolicyKind::from_str("lru").is_err());
    }

    #[test]
    fn default_kind_is_grouping() {
        assert_eq!(SharingPolicyKind::default(), SharingPolicyKind::Grouping);
        assert_eq!(
            policy_for(SharingPolicyKind::default()).kind(),
            SharingPolicyKind::Grouping
        );
    }

    #[test]
    fn grouping_is_the_only_policy_with_feedback_mechanisms() {
        assert!(GroupingPolicy.throttles() && GroupingPolicy.prioritizes());
        assert!(!AttachPolicy.throttles() && !AttachPolicy.prioritizes());
        assert!(!ElevatorPolicy.throttles() && !ElevatorPolicy.prioritizes());
    }

    #[test]
    fn push_attach_thresholds_follow_the_pull_instincts() {
        // Grouping: attach while the missed prefix stays a small slice
        // of the lap; refuse once the private replay would rival the
        // shared remainder.
        assert!(GroupingPolicy.attach_push(0, 1000));
        assert!(GroupingPolicy.attach_push(200, 1000));
        assert!(!GroupingPolicy.attach_push(201, 1000));
        // Attach and elevator ride the cursor unconditionally.
        assert!(AttachPolicy.attach_push(999, 1000));
        assert!(ElevatorPolicy.attach_push(999, 1000));
    }
}
