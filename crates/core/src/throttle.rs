//! Adaptive throttling of group leaders (§7.2).
//!
//! "Slowing down a scan operation in order to improve query response time
//! may seem counter-intuitive at first" — but an unthrottled leader runs
//! away from its group, every page it reads has to be physically re-read
//! by the followers, and the doubled I/O slows the leader itself down.
//! When a leader's distance to its trailer exceeds the threshold
//! (typically two prefetch extents), a wait is injected into the leader's
//! `update_location` call, sized so the trailer catches back up.
//!
//! Fairness: a scan that has already been delayed for more than
//! `fairness_cap` (80 %) of its estimated total scan time is never
//! throttled again — no single query pays unboundedly for the others.

use scanshare_storage::SimDuration;

use crate::config::SharingConfig;
use crate::scan::{ScanDesc, ScanState};

/// Total slowdown a scan may be made to absorb under the fairness cap:
/// `fairness_cap × estimated scan time`, scaled by the owning query's
/// priority when dynamic fairness is on. This is the denominator of the
/// "slowdown vs the 80 % cap" gauge the observability layer exports.
pub fn slowdown_budget(cfg: &SharingConfig, desc: &ScanDesc) -> SimDuration {
    let cap = if cfg.dynamic_fairness {
        (cfg.fairness_cap * desc.priority.fairness_factor()).min(1.0)
    } else {
        cfg.fairness_cap
    };
    SimDuration::from_micros((cap * desc.est_time.as_micros() as f64) as u64)
}

/// The wait needed for the trailer to close the excess gap, given the
/// trailer keeps moving at `trailer_speed` pages/second while the leader
/// stands still. Clamped to `cfg.max_wait`.
pub(crate) fn raw_wait(
    cfg: &SharingConfig,
    distance_pages: u64,
    trailer_speed: f64,
) -> SimDuration {
    let threshold = cfg.throttle_threshold_pages();
    if distance_pages <= threshold {
        return SimDuration::ZERO;
    }
    let excess = (distance_pages - threshold) as f64;
    if trailer_speed <= 0.0 {
        return cfg.max_wait;
    }
    let wait = SimDuration::from_secs_f64(excess / trailer_speed);
    wait.min(cfg.max_wait)
}

/// Apply the fairness cap of §7.2 and account the wait against the scan.
/// Returns the wait actually granted (zero once the scan is exempt).
pub(crate) fn throttle(
    cfg: &SharingConfig,
    scan: &mut ScanState,
    distance_pages: u64,
    trailer_speed: f64,
) -> SimDuration {
    if scan.throttle_exempt {
        return SimDuration::ZERO;
    }
    let wait = raw_wait(cfg, distance_pages, trailer_speed);
    if wait == SimDuration::ZERO {
        return SimDuration::ZERO;
    }
    // Dynamic fairness (the paper's future-work extension): the budget
    // scales the cap by the owning query's priority class.
    let budget = slowdown_budget(cfg, &scan.desc).saturating_sub(scan.accumulated_slowdown);
    if budget == SimDuration::ZERO {
        // "If a SISCAN was slowed down for more than 80% of its estimated
        // total scan time, it is not slowed down anymore until it
        // finishes."
        scan.throttle_exempt = true;
        return SimDuration::ZERO;
    }
    let granted = wait.min(budget);
    scan.accumulated_slowdown += granted;
    granted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::AnchorId;
    use crate::scan::{Location, ObjectId, ScanDesc, ScanId, ScanKind};
    use scanshare_storage::SimTime;

    fn cfg() -> SharingConfig {
        SharingConfig::new(1000) // threshold = 32 pages, max_wait 500ms
    }

    fn scan(est_secs: u64) -> ScanState {
        let desc = ScanDesc {
            kind: ScanKind::Table,
            object: ObjectId(0),
            start_key: 0,
            end_key: 1000,
            est_pages: 1000,
            est_time: SimDuration::from_secs(est_secs),
            priority: Default::default(),
        };
        ScanState::new(
            ScanId(0),
            desc,
            Location::new(0, 0),
            AnchorId(0),
            0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn no_wait_within_threshold() {
        assert_eq!(raw_wait(&cfg(), 32, 100.0), SimDuration::ZERO);
        assert_eq!(raw_wait(&cfg(), 10, 100.0), SimDuration::ZERO);
    }

    #[test]
    fn wait_closes_the_excess_gap_at_trailer_speed() {
        // 132 pages apart, threshold 32 -> 100 excess pages; the trailer
        // moves 100 pages/s -> wait 1s, clamped to max_wait 500ms.
        assert_eq!(raw_wait(&cfg(), 132, 100.0), SimDuration::from_millis(500));
        // 52 pages apart -> 20 excess at 100 pages/s -> 200ms.
        assert_eq!(raw_wait(&cfg(), 52, 100.0), SimDuration::from_millis(200));
    }

    #[test]
    fn stalled_trailer_yields_max_wait() {
        assert_eq!(raw_wait(&cfg(), 100, 0.0), cfg().max_wait);
    }

    #[test]
    fn throttle_accumulates_slowdown() {
        let c = cfg();
        let mut s = scan(10);
        let w = throttle(&c, &mut s, 52, 100.0);
        assert_eq!(w, SimDuration::from_millis(200));
        assert_eq!(s.accumulated_slowdown, SimDuration::from_millis(200));
        assert!(!s.throttle_exempt);
    }

    #[test]
    fn fairness_cap_limits_total_slowdown() {
        let c = cfg();
        // est_time 1s -> budget 0.8s. Each throttle grants up to 500ms.
        let mut s = scan(1);
        let w1 = throttle(&c, &mut s, 1000, 10.0); // raw wait huge -> 500ms
        assert_eq!(w1, SimDuration::from_millis(500));
        let w2 = throttle(&c, &mut s, 1000, 10.0); // only 300ms budget left
        assert_eq!(w2, SimDuration::from_millis(300));
        assert_eq!(s.accumulated_slowdown, SimDuration::from_millis(800));
        // Budget exhausted: the next call marks the scan exempt forever.
        let w3 = throttle(&c, &mut s, 1000, 10.0);
        assert_eq!(w3, SimDuration::ZERO);
        assert!(s.throttle_exempt);
        let w4 = throttle(&c, &mut s, 1_000_000, 10.0);
        assert_eq!(w4, SimDuration::ZERO);
    }

    #[test]
    fn dynamic_fairness_scales_the_cap_by_priority() {
        use crate::scan::QueryPriority;
        let c = SharingConfig {
            dynamic_fairness: true,
            ..cfg()
        };
        // est_time 1s; default cap 0.8. High-priority: 0.4s budget;
        // low-priority: capped at 1.0 -> 1.0s budget.
        let drain = |prio: QueryPriority| {
            let mut s = scan(1);
            s.desc.priority = prio;
            let mut total = SimDuration::ZERO;
            for _ in 0..10 {
                total += throttle(&c, &mut s, 1_000_000, 10.0);
            }
            total
        };
        assert_eq!(drain(QueryPriority::High), SimDuration::from_millis(400));
        assert_eq!(drain(QueryPriority::Normal), SimDuration::from_millis(800));
        assert_eq!(drain(QueryPriority::Low), SimDuration::from_millis(1000));
    }

    #[test]
    fn dynamic_fairness_off_ignores_priority() {
        use crate::scan::QueryPriority;
        let c = cfg();
        let mut s = scan(1);
        s.desc.priority = QueryPriority::High;
        let mut total = SimDuration::ZERO;
        for _ in 0..10 {
            total += throttle(&c, &mut s, 1_000_000, 10.0);
        }
        assert_eq!(total, SimDuration::from_millis(800));
    }

    #[test]
    fn no_accounting_when_within_threshold() {
        let c = cfg();
        let mut s = scan(10);
        assert_eq!(throttle(&c, &mut s, 5, 100.0), SimDuration::ZERO);
        assert_eq!(s.accumulated_slowdown, SimDuration::ZERO);
        assert!(!s.throttle_exempt);
    }
}
