//! Placement of new scans: sharing-potential estimation and candidate
//! search (§6, Figures 7–13 of the index-scan paper).
//!
//! The question placement answers: *given the ongoing scans, where should
//! a new scan start so that total physical page reads are minimized?*
//!
//! The estimator works in a one-dimensional **offset coordinate** (an
//! anchor group's offset space for index scans, the page axis for table
//! scans). Every ongoing scan is a [`Trace`] — a straight line in the
//! location/time plane whose slope is the scan's speed, as in the paper's
//! Figures 7–9. Sharing between two scans at a location `x` is possible
//! when the pool does not cycle between their crossing times: the pages
//! churned through the buffer pool between the two visits must not exceed
//! the pool size. The number of active scans determines the churn rate,
//! which is exactly the paper's "envelope" whose width shrinks as more
//! scans run (Figure 11).
//!
//! [`calculate_reads`] discretizes the candidate's range and counts, per
//! cell, how many *clusters* of temporally-close visits occur — each
//! cluster pays one physical read (Figure 10's `reads(r) * pages(r)`
//! summation). Visits that happened just *before* now (a scan that
//! recently passed `x`) cost nothing: those pages are already in the
//! pool, which is why starting right behind an ongoing scan is so
//! attractive (Figure 9).
//!
//! Two search strategies are provided:
//!
//! * [`best_start_optimal`] — the O(|S|³) "interesting locations" search
//!   of §6.2: candidate starts where the new scan's trace enters, centers
//!   on, or leaves an ongoing scan's envelope at each event time,
//! * [`best_start_practical`] — the O(|S|²) algorithm of §6.3 used by the
//!   manager: candidates are the current locations of the ongoing scans
//!   in the anchor groups overlapping the new scan's key range.

use serde::{Deserialize, Serialize};

/// Number of grid cells the estimator uses across the candidate's range.
pub const ESTIMATOR_CELLS: usize = 64;

/// A scan's trajectory in the shared offset coordinate: it is at `pos0`
/// now (time 0), moves at `speed` pages/second, and stops at `end_pos`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Position now.
    pub pos0: f64,
    /// Speed in pages per second (> 0 for a moving scan).
    pub speed: f64,
    /// Position at which the scan ends.
    pub end_pos: f64,
}

impl Trace {
    /// Construct a trace.
    pub fn new(pos0: f64, speed: f64, end_pos: f64) -> Self {
        Trace {
            pos0,
            speed,
            end_pos,
        }
    }

    /// Time (relative to now) at which the trace crosses `x`, if it does.
    /// Negative times mean the scan passed `x` in the recent past (it is
    /// ongoing, so its history is part of the pool state).
    fn crossing(&self, x: f64) -> Option<f64> {
        if self.speed <= 0.0 || x > self.end_pos {
            return None;
        }
        Some((x - self.pos0) / self.speed)
    }

    /// Time at which the scan finishes.
    fn end_time(&self) -> f64 {
        if self.speed <= 0.0 {
            0.0
        } else {
            ((self.end_pos - self.pos0) / self.speed).max(0.0)
        }
    }
}

/// Result of a sharing-potential estimation for one candidate start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadsEstimate {
    /// Estimated physical page reads within the candidate's range, with
    /// sharing (the paper's `calculateReads` output).
    pub reads: f64,
    /// Reads if no sharing happened at all (every visit pays).
    pub baseline: f64,
    /// Pages in the candidate's evaluated range.
    pub span: f64,
}

impl ReadsEstimate {
    /// Pages saved per page of range — used to compare candidates whose
    /// evaluated spans differ (the paper compares "best overall sharing
    /// potential among all groups"; normalizing per page keeps short
    /// conservative spans from looking artificially cheap).
    pub fn savings_per_page(&self) -> f64 {
        if self.span <= 0.0 {
            0.0
        } else {
            (self.baseline - self.reads) / self.span
        }
    }
}

/// Figure 10's `calculateReads`: estimate the physical reads in the
/// candidate's range `[cand.pos0, cand.end_pos]`, given the ongoing
/// `traces` and a pool of `pool_pages`.
///
/// ```
/// use scanshare::placement::{calculate_reads, Trace};
///
/// // Riding an identical-speed scan halves the reads.
/// let member = Trace::new(0.0, 100.0, 1000.0);
/// let est = calculate_reads(&[member], Trace::new(0.0, 100.0, 1000.0), 64.0);
/// assert!(est.reads < est.baseline);
/// assert!(est.savings_per_page() > 0.9);
/// ```
pub fn calculate_reads(traces: &[Trace], cand: Trace, pool_pages: f64) -> ReadsEstimate {
    let span = cand.end_pos - cand.pos0;
    if span <= 0.0 {
        return ReadsEstimate {
            reads: 0.0,
            baseline: 0.0,
            span: 0.0,
        };
    }
    let cells = ESTIMATOR_CELLS;
    let cell_w = span / cells as f64;
    let mut reads = 0.0;
    let mut baseline = 0.0;

    // Active churn rate at time t: every ongoing trace contributes its
    // speed until it ends; ongoing traces have been running since before
    // now, so they are active for all t <= end_time. The candidate is
    // active in [0, its end].
    let churn_at = |t: f64| -> f64 {
        let mut rate = 0.0;
        for tr in traces {
            if t <= tr.end_time() {
                rate += tr.speed;
            }
        }
        if (0.0..=cand.end_time()).contains(&t) {
            rate += cand.speed;
        }
        rate.max(1e-9)
    };

    let mut visits: Vec<f64> = Vec::with_capacity(traces.len() + 1);
    for c in 0..cells {
        let x = cand.pos0 + (c as f64 + 0.5) * cell_w;
        visits.clear();
        for tr in traces {
            if let Some(t) = tr.crossing(x) {
                visits.push(t);
            }
        }
        if let Some(t) = cand.crossing(x) {
            visits.push(t);
        }
        visits.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // Future visits each pay a read unless sharing merges them.
        baseline += visits.iter().filter(|&&t| t >= 0.0).count() as f64 * cell_w;

        // Cluster consecutive visits: a visit rides the previous one's
        // page if the pool has not cycled in between.
        let mut cell_reads = 0u32;
        let mut cluster_paid = false; // current cluster already paid/free
        let mut prev: Option<f64> = None;
        for &t in visits.iter() {
            let same_cluster = match prev {
                Some(p) => {
                    let mid = (p + t) / 2.0;
                    (t - p) * churn_at(mid) <= pool_pages
                }
                None => false,
            };
            if !same_cluster {
                cluster_paid = false;
            }
            if !cluster_paid {
                if t < 0.0 {
                    // Read already happened in the past: free for the
                    // cluster, costs nothing now.
                    cluster_paid = true;
                } else {
                    cell_reads += 1;
                    cluster_paid = true;
                }
            }
            prev = Some(t);
        }
        reads += cell_reads as f64 * cell_w;
    }
    ReadsEstimate {
        reads,
        baseline,
        span,
    }
}

/// A candidate start location with its estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementCandidate {
    /// Offset at which the new scan would start.
    pub start: f64,
    /// Index of the ongoing scan whose location this is (practical
    /// algorithm only; `usize::MAX` for synthetic optimal candidates).
    pub member: usize,
    /// The reads estimate for this start.
    pub estimate: ReadsEstimate,
}

/// The conservative end position of §6.3: the new scan's end key cannot
/// be located in offset space, so it is clamped to the smallest end
/// position of the ongoing scans that is still ahead of the start (and
/// never beyond the scan's own estimated length).
pub fn conservative_end(start: f64, est_pages: f64, members: &[Trace]) -> f64 {
    let own_end = start + est_pages;
    members
        .iter()
        .map(|m| m.end_pos)
        .filter(|&e| e > start)
        .fold(own_end, f64::min)
}

/// §6.3's practical placement: evaluate starting the new scan at each
/// ongoing scan's current location and return the candidate with the
/// highest per-page savings, if any candidate saves anything at all.
///
/// `members` are the ongoing scans of one anchor group, in the group's
/// offset coordinate. `cand_speed`/`cand_pages` are the new scan's
/// estimates. Cost: one `calculate_reads` per member — O(|S|²) overall,
/// as in the paper.
pub fn best_start_practical(
    members: &[Trace],
    cand_speed: f64,
    cand_pages: f64,
    pool_pages: f64,
) -> Option<PlacementCandidate> {
    let mut best: Option<PlacementCandidate> = None;
    for (i, m) in members.iter().enumerate() {
        let start = m.pos0;
        let end = conservative_end(start, cand_pages, members);
        let cand = Trace::new(start, cand_speed, end);
        let estimate = calculate_reads(members, cand, pool_pages);
        let c = PlacementCandidate {
            start,
            member: i,
            estimate,
        };
        if best
            .map(|b| c.estimate.savings_per_page() > b.estimate.savings_per_page())
            .unwrap_or(true)
        {
            best = Some(c);
        }
    }
    best.filter(|b| b.estimate.savings_per_page() > 0.0)
}

/// §6.2's optimal placement over "interesting locations": for every
/// ongoing scan and every event time (now, plus each scan's end time),
/// consider starts where the candidate's trace enters, centers on, or
/// leaves that scan's envelope. O(|S|²) candidates, each evaluated with
/// the O(|S|) estimator — O(|S|³) total, exactly the paper's bound.
///
/// `range` is the feasible start interval (the new scan's own range in
/// offset coordinates). Returns the candidate with minimal estimated
/// reads; unlike the practical variant the scan length is not clamped
/// conservatively, because in this variant the full linear geometry is
/// assumed known.
pub fn best_start_optimal(
    members: &[Trace],
    cand_speed: f64,
    cand_pages: f64,
    pool_pages: f64,
    range: (f64, f64),
) -> Option<PlacementCandidate> {
    if members.is_empty() {
        return None;
    }
    let mut events: Vec<f64> = vec![0.0];
    events.extend(members.iter().map(|m| m.end_time()));
    events.retain(|&t| t.is_finite() && t >= 0.0);

    let mut starts: Vec<f64> = Vec::new();
    for m in members {
        for &t in &events {
            let pos = m.pos0 + m.speed * t;
            if pos > m.end_pos + 1e-9 {
                continue;
            }
            let n_active = 1 + members.iter().filter(|o| t <= o.end_time()).count();
            let w = pool_pages / n_active as f64;
            for delta in [-w, 0.0, w] {
                let start = pos + delta - cand_speed * t;
                if start >= range.0 && start <= range.1 {
                    starts.push(start);
                }
            }
        }
    }
    starts.push(range.0); // starting at the own start key is always legal
    starts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    starts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut best: Option<PlacementCandidate> = None;
    for start in starts {
        let end = (start + cand_pages).min(range.1 + cand_pages);
        let cand = Trace::new(start, cand_speed, end);
        let estimate = calculate_reads(members, cand, pool_pages);
        let c = PlacementCandidate {
            start,
            member: usize::MAX,
            estimate,
        };
        if best
            .map(|b| c.estimate.reads < b.estimate.reads)
            .unwrap_or(true)
        {
            best = Some(c);
        }
    }
    best
}

/// The accounting step of Figures 8 and 9: total reads given, per key
/// range, its size in pages and how many times each of its pages is read.
/// This is line 10 of Figure 10 — `reads := reads + reads(r)*pages(r)` —
/// extracted so the paper's worked numbers are executable.
pub fn reads_for_ranges(ranges: &[(u64, u64)]) -> u64 {
    ranges.iter().map(|&(pages, reads)| pages * reads).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 8 walk-through: starting new scan E at the
    /// beginning of its range yields ranges of 15, 30, 15, 20, 10 pages
    /// read 3, 1, 2, 3, 3 times respectively = 195 reads, against a
    /// no-sharing worst case of 240 — a 19 % reduction.
    #[test]
    fn figure8_worked_example() {
        let with_sharing = reads_for_ranges(&[(15, 3), (30, 1), (15, 2), (20, 3), (10, 3)]);
        assert_eq!(with_sharing, 195);
        let worst = reads_for_ranges(&[(15, 3), (30, 2), (30, 3), (5, 3), (10, 3)]);
        assert_eq!(worst, 240);
        let reduction = 1.0 - with_sharing as f64 / worst as f64;
        assert!((reduction - 0.1875).abs() < 1e-9); // "19%"
    }

    /// Figure 9: starting E near scan A instead gives ranges 15, 20, 40,
    /// 15 pages each read twice = 180 reads — a 25 % reduction, so E
    /// should be started near A.
    #[test]
    fn figure9_worked_example() {
        let near_a = reads_for_ranges(&[(15, 2), (20, 2), (40, 2), (15, 2)]);
        assert_eq!(near_a, 180);
        let worst = 240;
        let reduction = 1.0 - near_a as f64 / worst as f64;
        assert!((reduction - 0.25).abs() < 1e-9);
        assert!(near_a < 195, "starting near A beats starting at the front");
    }

    #[test]
    fn lone_candidate_reads_every_page_once() {
        let cand = Trace::new(0.0, 100.0, 1000.0);
        let est = calculate_reads(&[], cand, 50.0);
        assert!((est.reads - 1000.0).abs() < 1.0);
        assert!((est.baseline - 1000.0).abs() < 1.0);
        assert_eq!(est.savings_per_page(), 0.0);
    }

    #[test]
    fn perfectly_aligned_scans_share_every_page() {
        let member = Trace::new(0.0, 100.0, 1000.0);
        let cand = Trace::new(0.0, 100.0, 1000.0);
        let est = calculate_reads(&[member], cand, 50.0);
        // Two scans, one read per page.
        assert!((est.reads - 1000.0).abs() < 1.0);
        assert!((est.baseline - 2000.0).abs() < 1.0);
        assert!((est.savings_per_page() - 1.0).abs() < 0.01);
    }

    #[test]
    fn distant_scans_with_a_small_pool_do_not_share() {
        // Member is 5000 pages ahead; pool of 50 pages cycles long before
        // the candidate arrives anywhere the member has been.
        let member = Trace::new(5000.0, 100.0, 10000.0);
        let cand = Trace::new(0.0, 100.0, 1000.0);
        let est = calculate_reads(&[member], cand, 50.0);
        assert!((est.reads - est.baseline).abs() < 1.0);
    }

    #[test]
    fn recently_passed_pages_are_free() {
        // The member just passed the candidate's whole range (it is at
        // 100 now, moving on). With a pool big enough to hold the range,
        // the candidate reads nothing.
        let member = Trace::new(100.0, 100.0, 1000.0);
        let cand = Trace::new(0.0, 100.0, 100.0);
        let est = calculate_reads(&[member], cand, 10_000.0);
        assert!(est.reads < 5.0, "reads {} should be ~0", est.reads);
    }

    #[test]
    fn practical_prefers_the_similar_speed_scan() {
        // Figure 7's moral: joining a fast scan only shares briefly
        // before drift ends it; a similar-speed scan shares all the way.
        let a = Trace::new(0.0, 300.0, 3000.0); // much faster, drifts away
        let c = Trace::new(500.0, 100.0, 2000.0); // same speed as candidate
        let best = best_start_practical(&[a, c], 100.0, 1500.0, 64.0).unwrap();
        assert_eq!(best.member, 1, "should join the similar-speed scan");
        assert!(best.estimate.savings_per_page() > 0.5);
    }

    #[test]
    fn practical_returns_none_when_nothing_saves() {
        // A single member that is about to finish: joining it saves
        // nothing measurable.
        let m = Trace::new(999.0, 100.0, 1000.0);
        let best = best_start_practical(&[m], 100.0, 1000.0, 16.0);
        if let Some(b) = best {
            assert!(b.estimate.savings_per_page() > 0.0);
        }
    }

    #[test]
    fn practical_empty_members_is_none() {
        assert!(best_start_practical(&[], 100.0, 100.0, 50.0).is_none());
    }

    #[test]
    fn conservative_end_clamps_to_member_ends() {
        let members = [Trace::new(0.0, 1.0, 500.0), Trace::new(0.0, 1.0, 800.0)];
        assert_eq!(conservative_end(100.0, 1000.0, &members), 500.0);
        // Members ending behind the start do not clamp.
        assert_eq!(conservative_end(600.0, 1000.0, &members), 800.0);
        assert_eq!(conservative_end(900.0, 1000.0, &members), 1900.0);
        // The scan's own length is an upper bound.
        assert_eq!(conservative_end(100.0, 50.0, &members), 150.0);
    }

    #[test]
    fn optimal_is_at_least_as_good_as_practical() {
        let members = [
            Trace::new(50.0, 120.0, 1200.0),
            Trace::new(400.0, 80.0, 1500.0),
            Trace::new(900.0, 200.0, 2500.0),
        ];
        let practical = best_start_practical(&members, 100.0, 1000.0, 100.0);
        let optimal = best_start_optimal(&members, 100.0, 1000.0, 100.0, (0.0, 2000.0)).unwrap();
        if let Some(p) = practical {
            // The optimal search includes every member position (center
            // candidates at t=0), so it can only do better or equal.
            let p_end = p.start + 1000.0;
            let p_est = calculate_reads(&members, Trace::new(p.start, 100.0, p_end), 100.0);
            assert!(optimal.estimate.reads <= p_est.reads + 1.0);
        }
    }

    #[test]
    fn optimal_on_empty_members_is_none() {
        assert!(best_start_optimal(&[], 1.0, 10.0, 10.0, (0.0, 10.0)).is_none());
    }

    #[test]
    fn optimal_respects_the_feasible_range() {
        let members = [Trace::new(-500.0, 100.0, 1000.0)];
        let best = best_start_optimal(&members, 100.0, 500.0, 50.0, (0.0, 400.0)).unwrap();
        assert!(best.start >= 0.0 && best.start <= 400.0);
    }

    #[test]
    fn estimate_of_empty_span_is_zero() {
        let est = calculate_reads(&[], Trace::new(10.0, 1.0, 10.0), 10.0);
        assert_eq!(est.reads, 0.0);
        assert_eq!(est.span, 0.0);
        assert_eq!(est.savings_per_page(), 0.0);
    }
}
