//! Counters the sharing manager keeps about its own decisions.

use scanshare_storage::SimDuration;
use serde::{Deserialize, Serialize};

/// Aggregate statistics over the manager's lifetime.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SharingStats {
    /// Scans registered.
    pub scans_started: u64,
    /// Scans that finished.
    pub scans_finished: u64,
    /// Scans placed at an ongoing scan's location.
    pub scans_joined: u64,
    /// Scans placed at the last finished scan's location (the special
    /// case of Figure 13, line 2).
    pub scans_joined_finished: u64,
    /// Scans placed by the optimal interesting-locations search at a
    /// location that is not any ongoing scan's position.
    pub scans_placed_optimal: u64,
    /// Scans that started at their own start key.
    pub scans_from_start: u64,
    /// Anchor-group merges triggered by location coincidence (§7.1).
    pub anchor_merges: u64,
    /// Throttle waits injected.
    pub waits_injected: u64,
    /// Total injected wait time.
    pub total_wait: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = SharingStats::default();
        assert_eq!(s.scans_started, 0);
        assert_eq!(s.total_wait, SimDuration::ZERO);
    }
}
