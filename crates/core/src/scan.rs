//! Scan identities, locations, and the per-scan attribute record of §5.2.

use scanshare_storage::{PagePriority, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::anchor::AnchorId;
use crate::grouping::Role;

/// Identifier of a registered scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScanId(pub u64);

/// Identifier of the object being scanned (a table, or an index over a
/// table). Scans can only share with scans on the same object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// What kind of scan this is. The distinction matters because table-scan
/// locations are linearly comparable (a page number) while index-scan
/// locations are not — index scans rely on the anchor/offset partial
/// order of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanKind {
    /// Sequential scan over a heap table; location = page number.
    Table,
    /// Index(-driven) scan; location = (key, opaque position).
    Index,
}

/// A scan location: the current key and an engine-assigned position token.
///
/// For table scans, `pos` is the page number and is meaningfully ordered.
/// For index scans, `pos` identifies the index entry being processed; the
/// manager only ever compares index positions for **equality** (to detect
/// that two scans are at the very same place), never for order — ordering
/// comes from anchors and offsets, keeping the index a black box exactly
/// as the paper prescribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Current key value (page number for table scans).
    pub key: i64,
    /// Engine-defined position token (entry index / page number).
    pub pos: u64,
}

impl Location {
    /// Construct a location.
    pub const fn new(key: i64, pos: u64) -> Self {
        Location { key, pos }
    }
}

/// Importance class of the query a scan belongs to, used by the dynamic
/// fairness extension (§7.2's future work: "make this threshold dynamic
/// by taking into account query priorities"). High-priority queries
/// tolerate less throttling for the benefit of others; low-priority
/// queries tolerate more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueryPriority {
    /// Batch/background work: may be slowed down longer.
    Low,
    /// Default.
    #[default]
    Normal,
    /// Interactive/SLA work: throttled only briefly.
    High,
}

impl QueryPriority {
    /// Multiplier applied to the fairness cap.
    pub fn fairness_factor(self) -> f64 {
        match self {
            QueryPriority::Low => 1.5,
            QueryPriority::Normal => 1.0,
            QueryPriority::High => 0.5,
        }
    }
}

/// The registration record a scan supplies at start time. `est_pages` and
/// `est_time` play the role of the paper's *scan amount estimate* and
/// *scan speed estimate*, "supplied by the costing component of the query
/// compiler".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanDesc {
    /// Table or index scan.
    pub kind: ScanKind,
    /// The scanned object.
    pub object: ObjectId,
    /// First key of the scan range (first page for table scans).
    pub start_key: i64,
    /// Last key of the scan range, inclusive.
    pub end_key: i64,
    /// Estimated pages between start and end key.
    pub est_pages: u64,
    /// Estimated time to scan the whole range.
    pub est_time: SimDuration,
    /// Importance of the owning query (see [`QueryPriority`]).
    #[serde(default)]
    pub priority: QueryPriority,
}

impl ScanDesc {
    /// Estimated speed in pages per second, derived exactly as the paper
    /// initializes it: `(estimated pages in range) / (estimated time)`.
    pub fn est_speed(&self) -> f64 {
        let secs = self.est_time.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.est_pages as f64 / secs
        }
    }

    /// Whether `key` falls inside the scan's key range.
    pub fn contains_key(&self, key: i64) -> bool {
        self.start_key <= key && key <= self.end_key
    }
}

/// The manager's internal record for one ongoing scan — the attribute set
/// of §5.2 of the paper, plus the accumulated-slowdown counter of §7.2.
#[derive(Debug, Clone)]
pub(crate) struct ScanState {
    pub id: ScanId,
    pub desc: ScanDesc,
    /// Current location (key value and position token).
    pub location: Location,
    /// Remaining pages in the scan range (initialized from the estimate,
    /// decremented as the scan advances).
    pub remaining_pages: u64,
    /// Recent speed in pages/second: `(pages since last update) / (time
    /// since last update)`.
    pub speed: f64,
    /// Anchor defining the scan's coordinate system.
    pub anchor: AnchorId,
    /// Pages between the anchor location and the current location.
    pub anchor_offset: i64,
    /// When the last location update arrived.
    pub last_update: SimTime,
    /// Total throttle wait injected into this scan so far.
    pub accumulated_slowdown: SimDuration,
    /// Set once the fairness cap is hit; the scan is never throttled again
    /// ("not slowed down anymore until it finishes").
    pub throttle_exempt: bool,
    /// Role reported by the last grouping pass (`None` before the first
    /// `update_location`), so role flips can be detected for provenance.
    pub last_role: Option<Role>,
    /// Whether the last throttle decision injected a wait (drives the
    /// `Unthrottle` provenance event).
    pub throttled: bool,
    /// Release priority chosen by the last `update_location` (`None`
    /// before the first call; releases start out `Normal`).
    pub last_priority: Option<PagePriority>,
}

impl ScanState {
    pub(crate) fn new(
        id: ScanId,
        desc: ScanDesc,
        location: Location,
        anchor: AnchorId,
        anchor_offset: i64,
        now: SimTime,
    ) -> Self {
        let speed = desc.est_speed();
        let remaining_pages = desc.est_pages;
        ScanState {
            id,
            desc,
            location,
            remaining_pages,
            speed,
            anchor,
            anchor_offset,
            last_update: now,
            accumulated_slowdown: SimDuration::ZERO,
            throttle_exempt: false,
            last_role: None,
            throttled: false,
            last_priority: None,
        }
    }

    /// Apply a location update: advance offset, refresh speed, shrink the
    /// remaining-pages estimate.
    pub(crate) fn advance(&mut self, now: SimTime, location: Location, pages: u64) {
        let dt = now.since(self.last_update).as_secs_f64();
        if dt > 0.0 && pages > 0 {
            self.speed = pages as f64 / dt;
        }
        self.location = location;
        self.anchor_offset += pages as i64;
        self.remaining_pages = self.remaining_pages.saturating_sub(pages);
        self.last_update = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> ScanDesc {
        ScanDesc {
            kind: ScanKind::Index,
            object: ObjectId(1),
            start_key: 10,
            end_key: 20,
            est_pages: 1000,
            est_time: SimDuration::from_secs(10),
            priority: Default::default(),
        }
    }

    #[test]
    fn priority_factors_order_sensibly() {
        assert!(QueryPriority::High.fairness_factor() < QueryPriority::Normal.fairness_factor());
        assert!(QueryPriority::Normal.fairness_factor() < QueryPriority::Low.fairness_factor());
        assert_eq!(QueryPriority::default(), QueryPriority::Normal);
    }

    #[test]
    fn est_speed_is_pages_over_time() {
        assert!((desc().est_speed() - 100.0).abs() < 1e-9);
        let zero_time = ScanDesc {
            est_time: SimDuration::ZERO,
            ..desc()
        };
        assert!(zero_time.est_speed().is_infinite());
    }

    #[test]
    fn contains_key_is_inclusive() {
        let d = desc();
        assert!(d.contains_key(10));
        assert!(d.contains_key(20));
        assert!(!d.contains_key(9));
        assert!(!d.contains_key(21));
    }

    #[test]
    fn advance_updates_speed_offset_and_remaining() {
        let mut s = ScanState::new(
            ScanId(1),
            desc(),
            Location::new(10, 0),
            AnchorId(0),
            0,
            SimTime::ZERO,
        );
        assert!((s.speed - 100.0).abs() < 1e-9); // initial estimate
        s.advance(SimTime::from_secs(2), Location::new(12, 400), 400);
        assert!((s.speed - 200.0).abs() < 1e-9); // measured
        assert_eq!(s.anchor_offset, 400);
        assert_eq!(s.remaining_pages, 600);
        assert_eq!(s.location, Location::new(12, 400));
    }

    #[test]
    fn advance_with_zero_dt_keeps_speed() {
        let mut s = ScanState::new(
            ScanId(1),
            desc(),
            Location::new(10, 0),
            AnchorId(0),
            0,
            SimTime::ZERO,
        );
        s.advance(SimTime::ZERO, Location::new(10, 16), 16);
        assert!((s.speed - 100.0).abs() < 1e-9);
        assert_eq!(s.anchor_offset, 16);
    }

    #[test]
    fn remaining_saturates_at_zero() {
        let mut s = ScanState::new(
            ScanId(1),
            desc(),
            Location::new(10, 0),
            AnchorId(0),
            0,
            SimTime::ZERO,
        );
        s.advance(SimTime::from_secs(1), Location::new(20, 5000), 5000);
        assert_eq!(s.remaining_pages, 0);
    }
}
