//! Lock-cheap metrics primitives and a snapshotable registry.
//!
//! The paper's whole evaluation is an observability exercise: Figures
//! 15–20 plot hit ratios, seeks, leader–trailer distances and throttle
//! waits *over virtual time*, not just end-of-run aggregates. This module
//! supplies the plumbing every layer records into:
//!
//! * [`Counter`] and [`Gauge`] — single atomics, no locks on the hot
//!   path,
//! * [`Histogram`] — power-of-two latency buckets plus an exact window of
//!   the first samples, so small runs report exact p50/p95/p99 and large
//!   runs report tight bucket upper bounds,
//! * [`Series`] — `(virtual time, value)` samples for time-series plots,
//! * [`MetricsRegistry`] — a shared, cloneable name → instrument map that
//!   can be [snapshotted](MetricsRegistry::snapshot) at any virtual time
//!   into a fully serializable [`MetricsSnapshot`].
//!
//! Instruments are cheap handles (an `Arc` around atomics); cloning one
//! out of the registry once and recording through it costs one or two
//! atomic RMWs per event. Only registration (`registry.counter("x")`)
//! takes a lock.

pub mod span;

use parking_lot::Mutex;
use scanshare_storage::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of exactly-retained samples per histogram. While a histogram
/// holds at most this many samples, quantiles are exact; past it they
/// fall back to power-of-two bucket upper bounds.
pub const EXACT_WINDOW: usize = 256;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (distances, ratios, counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the current value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Index of the power-of-two bucket holding `v`: the bit length of `v`.
/// Bucket 0 holds only 0; bucket `i` (i ≥ 1) holds `[2^(i-1), 2^i - 1]`.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

const N_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
    /// The first [`EXACT_WINDOW`] samples, verbatim.
    window: Mutex<Vec<u64>>,
}

/// A latency histogram with power-of-two buckets (one bucket per
/// leading-bit position of the microsecond value).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                buckets: [(); N_BUCKETS].map(|_| AtomicU64::new(0)),
                window: Mutex::new(Vec::new()),
            }),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample (typically a latency in microseconds).
    pub fn record(&self, v: u64) {
        let h = &*self.inner;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut w = h.window.lock();
        if w.len() < EXACT_WINDOW {
            w.push(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Freeze the current state into a serializable snapshot.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let h = &*self.inner;
        let count = h.count.load(Ordering::Relaxed);
        let buckets = h
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some(HistogramBucket {
                    le: bucket_upper(i),
                    count,
                })
            })
            .collect();
        let mut snap = HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                h.min.load(Ordering::Relaxed)
            },
            max: h.max.load(Ordering::Relaxed),
            buckets,
            window: h.window.lock().clone(),
            p50: 0,
            p95: 0,
            p99: 0,
        };
        snap.p50 = snap.quantile(0.50);
        snap.p95 = snap.quantile(0.95);
        snap.p99 = snap.quantile(0.99);
        snap
    }
}

/// One nonempty power-of-two bucket: `count` samples ≤ `le` (and greater
/// than the previous bucket's bound).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Samples in the bucket.
    pub count: u64,
}

/// Frozen state of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (see [`HistogramSnapshot::quantile`]).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Nonempty buckets in increasing bound order.
    pub buckets: Vec<HistogramBucket>,
    /// The first [`EXACT_WINDOW`] samples, for exact small-run quantiles.
    pub window: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`). Exact (nearest-rank over the
    /// retained window) while every sample is in the window; otherwise
    /// the inclusive upper bound of the bucket containing the rank,
    /// clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if self.count as usize <= self.window.len() {
            let mut sorted = self.window.clone();
            sorted.sort_unstable();
            return sorted[(rank - 1) as usize];
        }
        // Nearest rank over the buckets.
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.le.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct SeriesInner {
    points: Vec<SeriesPoint>,
}

/// A `(virtual time, value)` sample series, appended by the engine's
/// interval sampler.
#[derive(Debug, Clone, Default)]
pub struct Series {
    inner: Arc<Mutex<SeriesInner>>,
}

impl Series {
    /// A fresh, empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Append a sample taken at virtual time `at`.
    pub fn push(&self, at: SimTime, value: f64) {
        self.inner.lock().points.push(SeriesPoint {
            at_us: at.as_micros(),
            value,
        });
    }

    /// Number of samples so far.
    pub fn len(&self) -> usize {
        self.inner.lock().points.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freeze the samples recorded so far under `name`.
    pub fn snapshot(&self, name: &str) -> SeriesSnapshot {
        SeriesSnapshot {
            name: name.to_string(),
            points: self.inner.lock().points.clone(),
        }
    }
}

/// One sample of a [`Series`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Virtual time of the sample, in microseconds.
    pub at_us: u64,
    /// Sampled value.
    pub value: f64,
}

/// Frozen state of one [`Series`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Registry name.
    pub name: String,
    /// Samples in append order (virtual time is nondecreasing).
    pub points: Vec<SeriesPoint>,
}

impl SeriesSnapshot {
    /// The values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.value)
    }

    /// Largest sampled value (`0.0` when empty).
    pub fn max_value(&self) -> f64 {
        self.values().fold(0.0, f64::max)
    }
}

/// A counter's frozen value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Registry name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A gauge's frozen value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Registry name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// Everything a [`MetricsRegistry`] held at one virtual instant. Fully
/// serializable — this is what `RunReport` embeds and the CLI replays.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Virtual time the snapshot was taken at.
    pub at: SimTime,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Series `name`, if present.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Names of series starting with `prefix` (e.g. `"group."`).
    pub fn series_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = &'a SeriesSnapshot> + 'a {
        self.series
            .iter()
            .filter(move |s| s.name.starts_with(prefix))
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
    series: Vec<(String, Series)>,
}

fn get_or_insert<T: Clone + Default>(list: &mut Vec<(String, T)>, name: &str) -> T {
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return v.clone();
    }
    let v = T::default();
    list.push((name.to_string(), v.clone()));
    v
}

/// A shared name → instrument map. Cloning the registry (or an instrument
/// handle out of it) is cheap; all clones observe the same values.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("series", &inner.series.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        get_or_insert(&mut self.inner.lock().counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        get_or_insert(&mut self.inner.lock().gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        get_or_insert(&mut self.inner.lock().histograms, name)
    }

    /// The series registered under `name`, created on first use.
    pub fn series(&self, name: &str) -> Series {
        get_or_insert(&mut self.inner.lock().series, name)
    }

    /// Freeze every instrument at virtual time `at`. Instruments are
    /// sorted by name, so snapshots of identical runs are identical.
    pub fn snapshot(&self, at: SimTime) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut counters: Vec<CounterSample> = inner
            .counters
            .iter()
            .map(|(n, c)| CounterSample {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSample> = inner
            .gauges
            .iter()
            .map(|(n, g)| GaugeSample {
                name: n.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut series: Vec<SeriesSnapshot> =
            inner.series.iter().map(|(n, s)| s.snapshot(n)).collect();
        series.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            at,
            counters,
            gauges,
            histograms,
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_state_across_clones() {
        let r = MetricsRegistry::new();
        let c1 = r.counter("reads");
        let c2 = r.counter("reads");
        c1.inc();
        c2.add(4);
        assert_eq!(r.counter("reads").get(), 5);
        let g = r.gauge("distance");
        g.set(37.5);
        assert_eq!(r.gauge("distance").get(), 37.5);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn small_histograms_report_exact_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot("lat");
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 5050);
        // Exact nearest-rank quantiles over the retained window.
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn large_histograms_report_bucket_upper_bounds() {
        let h = Histogram::new();
        // 10_000 samples uniform over 1..=1000: well past the window.
        for i in 0..10_000u64 {
            h.record(i % 1000 + 1);
        }
        let s = h.snapshot("lat");
        assert_eq!(s.count, 10_000);
        for q in [0.5, 0.95, 0.99] {
            let true_q = (q * 1000.0) as u64;
            let est = s.quantile(q);
            // The estimate is the bucket's inclusive upper bound: never
            // below the true quantile, and at most 2x it.
            assert!(est >= true_q, "q={q}: est {est} < true {true_q}");
            assert!(est <= true_q * 2, "q={q}: est {est} > 2x true {true_q}");
        }
        // Extremes clamp to observed min/max.
        assert!(s.quantile(1.0) <= s.max);
        assert!(s.quantile(0.0) >= s.min);
    }

    #[test]
    fn quantiles_at_power_of_two_bucket_boundaries() {
        // Samples sitting exactly on bucket edges: 2^i is the *first*
        // value of bucket i+1, 2^i - 1 the *last* of bucket i. Past the
        // window, a quantile answers with its bucket's inclusive upper
        // bound, so boundary values must map to the right bucket.
        let h = Histogram::new();
        // 300 samples of 64 (bucket 7, le 127) and 300 of 63 (bucket 6,
        // le 63): count 600 > EXACT_WINDOW forces the bucketed path.
        for _ in 0..300 {
            h.record(63);
            h.record(64);
        }
        let s = h.snapshot("edge");
        assert_eq!(s.count, 600);
        assert_eq!(
            s.buckets,
            vec![
                HistogramBucket { le: 63, count: 300 },
                HistogramBucket {
                    le: 127,
                    count: 300
                },
            ]
        );
        // Rank 300 is the last sample of the le=63 bucket; rank 301 the
        // first of the le=127 bucket (clamped to the observed max 64).
        assert_eq!(s.quantile(0.5), 63);
        assert_eq!(s.quantile(0.51), 64);
        assert_eq!(s.p99, 64);

        // A pure power-of-two ladder: each value its own bucket.
        let h = Histogram::new();
        for i in 0..10u32 {
            for _ in 0..100 {
                h.record(1u64 << i);
            }
        }
        let s = h.snapshot("ladder");
        assert_eq!(s.count, 1000);
        assert_eq!(s.buckets.len(), 10);
        for (i, b) in s.buckets.iter().enumerate() {
            assert_eq!(b.le, (1u64 << (i + 1)) - 1);
            assert_eq!(b.count, 100);
        }
        // The p50 rank (500) lands in bucket 5 (values of 16, le 31).
        assert_eq!(s.quantile(0.5), 31);
        // p100 clamps the le=1023 bound to the observed max 512.
        assert_eq!(s.quantile(1.0), 512);
    }

    #[test]
    fn quantile_crossover_at_exactly_the_window_size() {
        // With count == EXACT_WINDOW every sample is in the window and
        // quantiles are exact; one more sample flips to bucket bounds.
        let h = Histogram::new();
        for v in 1..=EXACT_WINDOW as u64 {
            h.record(v);
        }
        let s = h.snapshot("exact");
        assert_eq!(s.count as usize, EXACT_WINDOW);
        assert_eq!(s.window.len(), EXACT_WINDOW);
        // Exact nearest-rank: p50 of 1..=256 is 128, p95 is 244 (rank
        // ceil(0.95*256) = 244), p99 is 254 (rank ceil(0.99*256)).
        assert_eq!(s.p50, 128);
        assert_eq!(s.p95, 244);
        assert_eq!(s.p99, 254);

        // Sample 257 evicts nothing (the window keeps the first 256) but
        // the count now exceeds it: the same quantiles become bucket
        // upper bounds.
        h.record(EXACT_WINDOW as u64 + 1);
        let s = h.snapshot("bucketed");
        assert_eq!(s.count as usize, EXACT_WINDOW + 1);
        assert_eq!(s.window.len(), EXACT_WINDOW, "window retains first 256");
        // p50 rank 129 falls in the le=255 bucket [128, 255]; p95 rank
        // 245 and p99 rank 255 do too.
        assert_eq!(s.p50, 255);
        assert_eq!(s.p95, 255);
        assert_eq!(s.p99, 255);
        // p100 rank 257 lands in the le=511 bucket, clamped to max 257.
        assert_eq!(s.quantile(1.0), 257);
        // The estimate never undershoots what the exact path reported.
        assert!(s.p50 >= 128 && s.p95 >= 244 && s.p99 >= 254);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot("x");
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn series_record_time_and_value() {
        let r = MetricsRegistry::new();
        let s = r.series("hit_ratio");
        s.push(SimTime::from_millis(100), 0.5);
        s.push(SimTime::from_millis(200), 0.75);
        let snap = r.snapshot(SimTime::from_millis(200));
        let ss = snap.series("hit_ratio").unwrap();
        assert_eq!(ss.points.len(), 2);
        assert_eq!(ss.points[0].at_us, 100_000);
        assert_eq!(ss.max_value(), 0.75);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = MetricsRegistry::new();
        r.counter("z").inc();
        r.counter("a").add(2);
        r.gauge("m").set(1.0);
        r.histogram("h").record(7);
        r.series("s").push(SimTime::ZERO, 3.0);
        let snap = r.snapshot(SimTime::from_secs(1));
        assert_eq!(snap.at, SimTime::from_secs(1));
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[1].name, "z");
        assert_eq!(snap.counter("z"), Some(1));
        assert_eq!(snap.gauge("m"), Some(1.0));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.series("s").unwrap().points.len(), 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = MetricsRegistry::new();
        r.counter("reads").add(42);
        r.gauge("group.0.distance_pages").set(160.0);
        let h = r.histogram("read_us");
        for v in [3u64, 900, 14, 7_000_000] {
            h.record(v);
        }
        r.series("pool.hit_ratio").push(SimTime::from_secs(2), 0.25);
        let snap = r.snapshot(SimTime::from_secs(3));
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        // Quantiles recomputed from the deserialized snapshot agree.
        assert_eq!(
            back.histogram("read_us").unwrap().quantile(0.5),
            snap.histogram("read_us").unwrap().p50
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = MetricsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = r.counter("n");
            let h = r.histogram("h");
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let snap = r.snapshot(SimTime::ZERO);
        assert_eq!(snap.counter("n"), Some(4000));
        assert_eq!(snap.histogram("h").unwrap().count, 4000);
    }
}
