//! Table metadata shared between the loader, the engine, and experiments.

use scanshare_storage::FileId;
use serde::{Deserialize, Serialize};

use crate::btree::BTree;
use crate::heap::HeapFile;
use crate::mdc::MdcTable;
use crate::value::Schema;

/// How a table is physically organized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TableKind {
    /// Plain heap file in insertion order (target of table scans).
    Heap(HeapFile),
    /// MDC block-clustered table (target of block index scans).
    Mdc(MdcTable),
}

/// A named table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Physical organization.
    pub kind: TableKind,
    /// Optional secondary RID index (key column -> packed RID).
    pub rid_index: Option<BTree>,
}

impl TableMeta {
    /// The table's row schema.
    pub fn schema(&self) -> &Schema {
        match &self.kind {
            TableKind::Heap(h) => &h.schema,
            TableKind::Mdc(m) => &m.schema,
        }
    }

    /// The backing file of the table pages.
    pub fn file(&self) -> FileId {
        match &self.kind {
            TableKind::Heap(h) => h.file,
            TableKind::Mdc(m) => m.file,
        }
    }

    /// Number of table pages.
    pub fn num_pages(&self) -> u32 {
        match &self.kind {
            TableKind::Heap(h) => h.num_pages,
            TableKind::Mdc(m) => m.num_pages(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        match &self.kind {
            TableKind::Heap(h) => h.num_rows,
            TableKind::Mdc(m) => m.num_rows,
        }
    }

    /// The MDC view of this table, if block-clustered.
    pub fn as_mdc(&self) -> Option<&MdcTable> {
        match &self.kind {
            TableKind::Mdc(m) => Some(m),
            TableKind::Heap(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColType, Column, Value};
    use crate::HeapWriter;
    use scanshare_storage::FileStore;

    #[test]
    fn heap_table_meta_accessors() {
        let mut store = FileStore::new(16);
        let schema = Schema::new(vec![Column::new("k", ColType::Int64)]);
        let mut w = HeapWriter::create(&mut store, schema.clone());
        for i in 0..10 {
            w.append(&mut store, &[Value::I64(i)]).unwrap();
        }
        let heap = w.finish(&mut store).unwrap();
        let meta = TableMeta {
            name: "t".into(),
            kind: TableKind::Heap(heap),
            rid_index: None,
        };
        assert_eq!(meta.num_rows(), 10);
        assert_eq!(meta.num_pages(), 1);
        assert_eq!(meta.schema(), &schema);
        assert!(meta.as_mdc().is_none());
    }
}
