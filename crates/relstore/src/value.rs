//! Column types, schemas, and a fixed-width row codec.
//!
//! Rows are encoded at fixed per-column offsets so that the scan operators
//! can evaluate predicates through a zero-copy [`RowRef`] without decoding
//! the whole tuple — page processing cost is dominated by the simulated
//! CPU model, not by the host's allocator.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The column types supported by the mini engine. All are fixed width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit signed integer (keys, counts).
    Int64,
    /// 32-bit signed integer (dates encoded as days/months).
    Int32,
    /// 64-bit float (prices, quantities).
    Float64,
    /// Single ASCII character (flags).
    Char,
}

impl ColType {
    /// Encoded width in bytes.
    pub const fn width(self) -> usize {
        match self {
            ColType::Int64 => 8,
            ColType::Int32 => 4,
            ColType::Float64 => 8,
            ColType::Char => 1,
        }
    }
}

/// A typed value, used on the write path and in tests. The read path uses
/// [`RowRef`] accessors instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer.
    I64(i64),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit float.
    F64(f64),
    /// Single character.
    Ch(u8),
}

impl Value {
    /// The type this value encodes as.
    pub fn col_type(&self) -> ColType {
        match self {
            Value::I64(_) => ColType::Int64,
            Value::I32(_) => ColType::Int32,
            Value::F64(_) => ColType::Float64,
            Value::Ch(_) => ColType::Char,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Ch(v) => write!(f, "{}", *v as char),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered set of columns with precomputed encoding offsets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    cols: Vec<Column>,
    offsets: Vec<usize>,
    row_width: usize,
}

impl Schema {
    /// Build a schema from columns, computing fixed offsets.
    pub fn new(cols: Vec<Column>) -> Self {
        let mut offsets = Vec::with_capacity(cols.len());
        let mut off = 0usize;
        for c in &cols {
            offsets.push(off);
            off += c.ty.width();
        }
        Schema {
            cols,
            offsets,
            row_width: off,
        }
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Width of an encoded row in bytes.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Index of the column named `name`.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    /// Byte offset of column `idx` within an encoded row.
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// Encode a row of values into `out`. Panics if the values do not
    /// match the schema (this is a load-time API; loads are trusted).
    pub fn encode_row(&self, values: &[Value], out: &mut [u8]) {
        assert_eq!(values.len(), self.cols.len(), "arity mismatch");
        assert!(out.len() >= self.row_width, "output buffer too small");
        for (i, v) in values.iter().enumerate() {
            assert_eq!(v.col_type(), self.cols[i].ty, "type mismatch in col {i}");
            let off = self.offsets[i];
            match *v {
                Value::I64(x) => out[off..off + 8].copy_from_slice(&x.to_le_bytes()),
                Value::I32(x) => out[off..off + 4].copy_from_slice(&x.to_le_bytes()),
                Value::F64(x) => out[off..off + 8].copy_from_slice(&x.to_le_bytes()),
                Value::Ch(x) => out[off] = x,
            }
        }
    }

    /// Decode a full row into values (test/report path).
    pub fn decode_row(&self, bytes: &[u8]) -> Vec<Value> {
        let r = RowRef {
            bytes,
            schema: self,
        };
        (0..self.cols.len())
            .map(|i| match self.cols[i].ty {
                ColType::Int64 => Value::I64(r.get_i64(i)),
                ColType::Int32 => Value::I32(r.get_i32(i)),
                ColType::Float64 => Value::F64(r.get_f64(i)),
                ColType::Char => Value::Ch(r.get_char(i)),
            })
            .collect()
    }
}

/// A zero-copy view over one encoded row.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    /// The encoded row bytes (at least `schema.row_width()` long).
    pub bytes: &'a [u8],
    /// The schema describing the encoding.
    pub schema: &'a Schema,
}

impl<'a> RowRef<'a> {
    /// Read an `Int64` column.
    #[inline]
    pub fn get_i64(&self, col: usize) -> i64 {
        let off = self.schema.offset(col);
        i64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read an `Int32` column.
    #[inline]
    pub fn get_i32(&self, col: usize) -> i32 {
        let off = self.schema.offset(col);
        i32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Read a `Float64` column.
    #[inline]
    pub fn get_f64(&self, col: usize) -> f64 {
        let off = self.schema.offset(col);
        f64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read a `Char` column.
    #[inline]
    pub fn get_char(&self, col: usize) -> u8 {
        self.bytes[self.schema.offset(col)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineitem_like() -> Schema {
        Schema::new(vec![
            Column::new("orderkey", ColType::Int64),
            Column::new("quantity", ColType::Float64),
            Column::new("shipdate", ColType::Int32),
            Column::new("returnflag", ColType::Char),
        ])
    }

    #[test]
    fn offsets_are_packed() {
        let s = lineitem_like();
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 8);
        assert_eq!(s.offset(2), 16);
        assert_eq!(s.offset(3), 20);
        assert_eq!(s.row_width(), 21);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = lineitem_like();
        let row = vec![
            Value::I64(42),
            Value::F64(3.25),
            Value::I32(-7),
            Value::Ch(b'R'),
        ];
        let mut buf = vec![0u8; s.row_width()];
        s.encode_row(&row, &mut buf);
        assert_eq!(s.decode_row(&buf), row);
    }

    #[test]
    fn row_ref_accessors_read_in_place() {
        let s = lineitem_like();
        let mut buf = vec![0u8; s.row_width()];
        s.encode_row(
            &[
                Value::I64(7),
                Value::F64(1.5),
                Value::I32(99),
                Value::Ch(b'A'),
            ],
            &mut buf,
        );
        let r = RowRef {
            bytes: &buf,
            schema: &s,
        };
        assert_eq!(r.get_i64(0), 7);
        assert_eq!(r.get_f64(1), 1.5);
        assert_eq!(r.get_i32(2), 99);
        assert_eq!(r.get_char(3), b'A');
    }

    #[test]
    fn col_index_by_name() {
        let s = lineitem_like();
        assert_eq!(s.col_index("shipdate"), Some(2));
        assert_eq!(s.col_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn encode_wrong_arity_panics() {
        let s = lineitem_like();
        let mut buf = vec![0u8; s.row_width()];
        s.encode_row(&[Value::I64(1)], &mut buf);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn encode_wrong_type_panics() {
        let s = lineitem_like();
        let mut buf = vec![0u8; s.row_width()];
        s.encode_row(
            &[
                Value::I32(1),
                Value::F64(0.0),
                Value::I32(0),
                Value::Ch(b'x'),
            ],
            &mut buf,
        );
    }
}
