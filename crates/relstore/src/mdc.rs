//! MDC-style block-clustered tables.
//!
//! A Multi-Dimensionally Clustered table (§3.4 of the paper) stores rows
//! in *blocks*: fixed-size runs of contiguous pages that all contain rows
//! of the same clustering-key cell. A **block index** maps each cell key
//! to the list of its block ids (BIDs).
//!
//! The builder buffers one open block per cell and flushes complete
//! blocks in completion order. Cells that fill up concurrently therefore
//! interleave their blocks on disk — exactly the layout that makes a
//! key-ordered block index scan seek between block runs, which is the
//! I/O pattern the scan-sharing machinery optimizes.

use std::collections::BTreeMap;

use scanshare_storage::{FileId, FileStore, StorageResult};
use serde::{Deserialize, Serialize};

use crate::btree::{BTree, Entry};
use crate::heap::HeapPageBuilder;
use crate::value::{Schema, Value};

/// A block id: the index of a block-sized page run within the table file.
pub type BlockId = u32;

/// A fully loaded MDC table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdcTable {
    /// Backing file of the table pages.
    pub file: FileId,
    /// Row schema.
    pub schema: Schema,
    /// Pages per block.
    pub block_pages: u32,
    /// Number of blocks in the table.
    pub num_blocks: u32,
    /// Number of rows in the table.
    pub num_rows: u64,
    /// Block index: cell key -> BIDs (as B+ tree payloads).
    pub block_index: BTree,
    /// Smallest cell key present.
    pub min_key: i64,
    /// Largest cell key present.
    pub max_key: i64,
}

impl MdcTable {
    /// Total table pages (blocks × pages per block).
    pub fn num_pages(&self) -> u32 {
        self.num_blocks * self.block_pages
    }

    /// Page numbers covered by block `bid`.
    pub fn block_page_range(&self, bid: BlockId) -> std::ops::Range<u32> {
        let start = bid * self.block_pages;
        start..start + self.block_pages
    }

    /// The `(cell key, BID)` entries for cells in `[lo, hi]`, in index
    /// order — the sequence a block index scan traverses.
    pub fn blocks_for_range(
        &self,
        store: &FileStore,
        lo: i64,
        hi: i64,
    ) -> StorageResult<Vec<Entry>> {
        self.block_index.range(store, lo, hi)
    }
}

struct OpenBlock {
    pages: Vec<HeapPageBuilder>,
}

impl OpenBlock {
    fn new() -> Self {
        OpenBlock {
            pages: vec![HeapPageBuilder::new()],
        }
    }
}

/// Builds an MDC table by appending `(cell key, row)` pairs in any order.
pub struct MdcTableBuilder {
    file: FileId,
    schema: Schema,
    block_pages: u32,
    open: BTreeMap<i64, OpenBlock>,
    index_entries: Vec<Entry>,
    blocks_flushed: u32,
    rows: u64,
    rowbuf: Vec<u8>,
}

impl MdcTableBuilder {
    /// Start building an MDC table with `block_pages` pages per block.
    pub fn create(store: &mut FileStore, schema: Schema, block_pages: u32) -> Self {
        assert!(block_pages > 0);
        let file = store.create_file();
        MdcTableBuilder {
            file,
            block_pages,
            open: BTreeMap::new(),
            index_entries: Vec::new(),
            blocks_flushed: 0,
            rows: 0,
            rowbuf: vec![0u8; schema.row_width()],
            schema,
        }
    }

    /// Append one row into the cell `cell_key`.
    pub fn append(
        &mut self,
        store: &mut FileStore,
        cell_key: i64,
        values: &[Value],
    ) -> StorageResult<()> {
        self.schema.encode_row(values, &mut self.rowbuf);
        let width = self.schema.row_width();
        let block_pages = self.block_pages as usize;
        let block = self.open.entry(cell_key).or_insert_with(OpenBlock::new);
        let record = &self.rowbuf[..width];
        let fit = block
            .pages
            .last_mut()
            .expect("open block has a page")
            .push(record)
            .is_some();
        if !fit {
            if block.pages.len() < block_pages {
                // Start the next page of the block.
                let mut p = HeapPageBuilder::new();
                p.push(record).expect("fresh page fits one record");
                block.pages.push(p);
            } else {
                // Block is full: flush it and open a fresh one.
                let full = std::mem::replace(block, OpenBlock::new());
                Self::flush_block(
                    store,
                    self.file,
                    self.block_pages,
                    &mut self.blocks_flushed,
                    &mut self.index_entries,
                    cell_key,
                    full,
                )?;
                self.open
                    .get_mut(&cell_key)
                    .unwrap()
                    .pages
                    .last_mut()
                    .unwrap()
                    .push(record)
                    .expect("fresh page fits one record");
            }
        }
        self.rows += 1;
        Ok(())
    }

    fn flush_block(
        store: &mut FileStore,
        file: FileId,
        block_pages: u32,
        blocks_flushed: &mut u32,
        index_entries: &mut Vec<Entry>,
        cell_key: i64,
        block: OpenBlock,
    ) -> StorageResult<()> {
        let bid = *blocks_flushed;
        let mut written = 0;
        for page in block.pages {
            store.append_page(file, page.finish())?;
            written += 1;
        }
        // Pad partial blocks so blocks stay aligned, contiguous page runs.
        while written < block_pages {
            store.append_page(file, HeapPageBuilder::new().finish())?;
            written += 1;
        }
        index_entries.push(Entry::new(cell_key, bid as u64));
        *blocks_flushed += 1;
        Ok(())
    }

    /// Flush all open blocks, build the block index, and return the table.
    pub fn finish(mut self, store: &mut FileStore) -> StorageResult<MdcTable> {
        let open = std::mem::take(&mut self.open);
        for (cell_key, block) in open {
            if block.pages.len() == 1 && block.pages[0].num_rows() == 0 {
                continue;
            }
            Self::flush_block(
                store,
                self.file,
                self.block_pages,
                &mut self.blocks_flushed,
                &mut self.index_entries,
                cell_key,
                block,
            )?;
        }
        self.index_entries.sort();
        let (min_key, max_key) = if self.index_entries.is_empty() {
            (0, -1)
        } else {
            (
                self.index_entries[0].key,
                self.index_entries[self.index_entries.len() - 1].key,
            )
        };
        let block_index = BTree::bulk_load(store, &self.index_entries)?;
        Ok(MdcTable {
            file: self.file,
            schema: self.schema,
            block_pages: self.block_pages,
            num_blocks: self.blocks_flushed,
            num_rows: self.rows,
            block_index,
            min_key,
            max_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapPage;
    use crate::value::{ColType, Column, RowRef};
    use scanshare_storage::PageId;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("month", ColType::Int32),
            Column::new("amount", ColType::Float64),
        ])
    }

    fn build(rows: &[(i64, f64)], block_pages: u32) -> (FileStore, MdcTable) {
        let mut store = FileStore::new(block_pages);
        let mut b = MdcTableBuilder::create(&mut store, schema(), block_pages);
        for &(cell, amount) in rows {
            b.append(
                &mut store,
                cell,
                &[Value::I32(cell as i32), Value::F64(amount)],
            )
            .unwrap();
        }
        let t = b.finish(&mut store).unwrap();
        (store, t)
    }

    /// Count rows of each cell by scanning the blocks the index reports.
    fn rows_in_cell(store: &FileStore, t: &MdcTable, cell: i64) -> u64 {
        let mut n = 0;
        for e in t.blocks_for_range(store, cell, cell).unwrap() {
            for p in t.block_page_range(e.payload as u32) {
                let bytes = store.read_page(PageId::new(t.file, p)).unwrap();
                let page = HeapPage::new(&bytes).unwrap();
                for row in page.rows() {
                    let r = RowRef {
                        bytes: row,
                        schema: &t.schema,
                    };
                    assert_eq!(r.get_i32(0) as i64, cell, "row in wrong cell block");
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn rows_land_in_their_cells() {
        let rows: Vec<(i64, f64)> = (0..5000).map(|i| ((i % 3) as i64, i as f64)).collect();
        let (store, t) = build(&rows, 2);
        assert_eq!(t.num_rows, 5000);
        for cell in 0..3 {
            let expected = rows.iter().filter(|r| r.0 == cell).count() as u64;
            assert_eq!(rows_in_cell(&store, &t, cell), expected);
        }
    }

    #[test]
    fn blocks_are_contiguous_page_runs() {
        let rows: Vec<(i64, f64)> = (0..8000).map(|i| ((i % 4) as i64, i as f64)).collect();
        let (store, t) = build(&rows, 4);
        for bid in 0..t.num_blocks {
            let pages: Vec<u64> = t
                .block_page_range(bid)
                .map(|p| store.physical(PageId::new(t.file, p)).unwrap())
                .collect();
            for w in pages.windows(2) {
                assert_eq!(w[1], w[0] + 1, "block {bid} not physically contiguous");
            }
        }
    }

    #[test]
    fn interleaved_cells_interleave_blocks() {
        // Round-robin inserts across 2 cells: block flush order must
        // alternate, so consecutive BIDs belong to different cells.
        let rows: Vec<(i64, f64)> = (0..40_000).map(|i| ((i % 2) as i64, i as f64)).collect();
        let (store, t) = build(&rows, 2);
        let cell0: Vec<u64> = t
            .blocks_for_range(&store, 0, 0)
            .unwrap()
            .iter()
            .map(|e| e.payload)
            .collect();
        let cell1: Vec<u64> = t
            .blocks_for_range(&store, 1, 1)
            .unwrap()
            .iter()
            .map(|e| e.payload)
            .collect();
        assert!(cell0.len() > 1 && cell1.len() > 1);
        // Cell 0's blocks are not all before cell 1's: they interleave.
        assert!(cell0[cell0.len() - 1] > cell1[0]);
        assert!(cell1[cell1.len() - 1] > cell0[0]);
    }

    #[test]
    fn index_entries_are_sorted_and_min_max_tracked() {
        let rows: Vec<(i64, f64)> = vec![(5, 1.0), (2, 2.0), (9, 3.0), (2, 4.0)];
        let (store, t) = build(&rows, 1);
        let all = t.block_index.all(&store).unwrap();
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.min_key, 2);
        assert_eq!(t.max_key, 9);
    }

    #[test]
    fn empty_table() {
        let (store, t) = build(&[], 2);
        assert_eq!(t.num_blocks, 0);
        assert_eq!(t.num_rows, 0);
        assert_eq!(
            t.blocks_for_range(&store, i64::MIN, i64::MAX).unwrap(),
            vec![]
        );
    }

    #[test]
    fn partial_blocks_are_padded_to_alignment() {
        let rows: Vec<(i64, f64)> = vec![(1, 1.0)];
        let (store, t) = build(&rows, 4);
        assert_eq!(t.num_blocks, 1);
        assert_eq!(store.num_pages(t.file).unwrap(), 4);
        // Pages 1..4 are empty padding.
        for p in 1..4 {
            let bytes = store.read_page(PageId::new(t.file, p)).unwrap();
            assert_eq!(HeapPage::new(&bytes).unwrap().num_rows(), 0);
        }
    }

    #[test]
    fn cell_fills_multiple_blocks() {
        // One cell with enough rows for several blocks.
        let rows: Vec<(i64, f64)> = (0..30_000).map(|i| (7, i as f64)).collect();
        let (store, t) = build(&rows, 2);
        let bids = t.blocks_for_range(&store, 7, 7).unwrap();
        assert!(bids.len() > 2);
        assert_eq!(rows_in_cell(&store, &t, 7), 30_000);
        // BIDs for a single cell are returned in increasing order.
        assert!(bids.windows(2).all(|w| w[0].payload < w[1].payload));
    }
}
