//! A paged B+ tree over `(i64 key, u64 payload)` entries.
//!
//! Duplicates are supported by ordering entries on the *composite*
//! `(key, payload)` — the classic trick for secondary indexes. The same
//! tree therefore serves as
//!
//! * a **RID index**: payload = packed [`crate::heap::Rid`], and
//! * an **MDC block index**: payload = block id (a key maps to the list of
//!   blocks holding rows of that clustering-key cell, cf. §3.4 of the
//!   paper).
//!
//! Leaves are chained left-to-right so a range scan is a single descent
//! followed by a linked-list walk — this chain is exactly the "index
//! order" along which the papers define scan *location*.
//!
//! Index pages are read directly from the [`FileStore`] (see the crate
//! docs for why index I/O is not modeled). Node layout, little-endian:
//!
//! ```text
//! leaf:     [kind=0 u8][pad u8][n u16][next_leaf u32] then n × (key i64, payload u64)
//! internal: [kind=1 u8][pad u8][n u16][child0   u32] then n × (key i64, payload u64, child u32)
//! ```
//!
//! In an internal node, pair `i` is the smallest composite entry of
//! subtree `child(i+1)`; a search descends into the rightmost child whose
//! separator is `<=` the probe.

use bytes::BytesMut;
use scanshare_storage::{FileId, FileStore, PageId, StorageResult, PAGE_SIZE};
use serde::{Deserialize, Serialize};

const HEADER: usize = 8;
const LEAF_ENTRY: usize = 16;
const INT_ENTRY: usize = 20;
/// Maximum entries in a leaf node.
pub const LEAF_CAP: usize = (PAGE_SIZE - HEADER) / LEAF_ENTRY;
/// Maximum separator entries in an internal node.
pub const INT_CAP: usize = (PAGE_SIZE - HEADER) / INT_ENTRY;
const NO_PAGE: u32 = u32::MAX;

/// One index entry: a key and its payload (RID or block id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Entry {
    /// The indexed key.
    pub key: i64,
    /// The payload, compared after the key to order duplicates.
    pub payload: u64,
}

impl Entry {
    /// Construct an entry.
    pub const fn new(key: i64, payload: u64) -> Self {
        Entry { key, payload }
    }

    /// The smallest possible entry with this key (for range probes).
    pub const fn min_for_key(key: i64) -> Self {
        Entry { key, payload: 0 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<Entry>,
        next: u32,
    },
    Internal {
        /// child0, then (separator, child) pairs.
        child0: u32,
        seps: Vec<(Entry, u32)>,
    },
}

impl Node {
    fn decode(bytes: &[u8]) -> Node {
        let kind = bytes[0];
        let n = u16::from_le_bytes(bytes[2..4].try_into().unwrap()) as usize;
        let w = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if kind == 0 {
            let mut entries = Vec::with_capacity(n);
            for i in 0..n {
                let off = HEADER + i * LEAF_ENTRY;
                entries.push(Entry {
                    key: i64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()),
                    payload: u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap()),
                });
            }
            Node::Leaf { entries, next: w }
        } else {
            let mut seps = Vec::with_capacity(n);
            for i in 0..n {
                let off = HEADER + i * INT_ENTRY;
                let key = i64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                let payload = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
                let child = u32::from_le_bytes(bytes[off + 16..off + 20].try_into().unwrap());
                seps.push((Entry { key, payload }, child));
            }
            Node::Internal { child0: w, seps }
        }
    }

    fn encode(&self) -> bytes::Bytes {
        let mut buf = BytesMut::zeroed(PAGE_SIZE);
        match self {
            Node::Leaf { entries, next } => {
                buf[0] = 0;
                buf[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                buf[4..8].copy_from_slice(&next.to_le_bytes());
                for (i, e) in entries.iter().enumerate() {
                    let off = HEADER + i * LEAF_ENTRY;
                    buf[off..off + 8].copy_from_slice(&e.key.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&e.payload.to_le_bytes());
                }
            }
            Node::Internal { child0, seps } => {
                buf[0] = 1;
                buf[2..4].copy_from_slice(&(seps.len() as u16).to_le_bytes());
                buf[4..8].copy_from_slice(&child0.to_le_bytes());
                for (i, (e, c)) in seps.iter().enumerate() {
                    let off = HEADER + i * INT_ENTRY;
                    buf[off..off + 8].copy_from_slice(&e.key.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&e.payload.to_le_bytes());
                    buf[off + 16..off + 20].copy_from_slice(&c.to_le_bytes());
                }
            }
        }
        buf.freeze()
    }
}

/// Size and shape statistics of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BTreeStats {
    /// Number of levels (1 = a single leaf).
    pub height: u32,
    /// Total entries in the tree.
    pub entries: u64,
    /// Number of leaf pages.
    pub leaf_pages: u32,
}

/// A paged B+ tree rooted in a [`FileStore`] file.
///
/// ```
/// use scanshare_relstore::{BTree, Entry};
/// use scanshare_storage::FileStore;
///
/// let mut store = FileStore::new(16);
/// let mut tree = BTree::create(&mut store).unwrap();
/// tree.insert(&mut store, Entry::new(5, 100)).unwrap();
/// tree.insert(&mut store, Entry::new(5, 101)).unwrap(); // duplicate key
/// tree.insert(&mut store, Entry::new(9, 102)).unwrap();
/// assert_eq!(tree.range(&store, 5, 8).unwrap().len(), 2);
/// assert!(tree.delete(&mut store, Entry::new(5, 100)).unwrap());
/// assert_eq!(tree.num_entries(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BTree {
    file: FileId,
    root: u32,
    entries: u64,
}

impl BTree {
    /// Create an empty tree in a fresh file.
    pub fn create(store: &mut FileStore) -> StorageResult<Self> {
        let file = store.create_file();
        let root_node = Node::Leaf {
            entries: Vec::new(),
            next: NO_PAGE,
        };
        let root = store.append_page(file, root_node.encode())?.page;
        Ok(BTree {
            file,
            root,
            entries: 0,
        })
    }

    /// The backing file.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Total entries in the tree.
    pub fn num_entries(&self) -> u64 {
        self.entries
    }

    fn read(&self, store: &FileStore, page: u32) -> StorageResult<Node> {
        let bytes = store.read_page(PageId::new(self.file, page))?;
        Ok(Node::decode(&bytes))
    }

    fn write(&self, store: &mut FileStore, page: u32, node: &Node) -> StorageResult<()> {
        store.write_page(PageId::new(self.file, page), node.encode())
    }

    fn alloc(&self, store: &mut FileStore, node: &Node) -> StorageResult<u32> {
        Ok(store.append_page(self.file, node.encode())?.page)
    }

    /// Insert one entry. Duplicate `(key, payload)` pairs are allowed and
    /// stored multiple times.
    pub fn insert(&mut self, store: &mut FileStore, entry: Entry) -> StorageResult<()> {
        if let Some((sep, right)) = self.insert_rec(store, self.root, entry)? {
            // Root split: move the old root to a new page and make the
            // root page an internal node, so `self.root` stays stable.
            let old_root = self.read(store, self.root)?;
            let left = self.alloc(store, &old_root)?;
            let new_root = Node::Internal {
                child0: left,
                seps: vec![(sep, right)],
            };
            self.write(store, self.root, &new_root)?;
        }
        self.entries += 1;
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new_right_page))` when
    /// the child split.
    fn insert_rec(
        &self,
        store: &mut FileStore,
        page: u32,
        entry: Entry,
    ) -> StorageResult<Option<(Entry, u32)>> {
        match self.read(store, page)? {
            Node::Leaf { mut entries, next } => {
                let pos = entries.partition_point(|e| *e <= entry);
                entries.insert(pos, entry);
                if entries.len() <= LEAF_CAP {
                    self.write(store, page, &Node::Leaf { entries, next })?;
                    return Ok(None);
                }
                let right_entries = entries.split_off(entries.len() / 2);
                let sep = right_entries[0];
                let right = self.alloc(
                    store,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                self.write(
                    store,
                    page,
                    &Node::Leaf {
                        entries,
                        next: right,
                    },
                )?;
                Ok(Some((sep, right)))
            }
            Node::Internal { child0, mut seps } => {
                // Descend into the rightmost child whose separator <= entry.
                let idx = seps.partition_point(|(s, _)| *s <= entry);
                let child = if idx == 0 { child0 } else { seps[idx - 1].1 };
                let Some((sep, right)) = self.insert_rec(store, child, entry)? else {
                    return Ok(None);
                };
                seps.insert(idx, (sep, right));
                if seps.len() <= INT_CAP {
                    self.write(store, page, &Node::Internal { child0, seps })?;
                    return Ok(None);
                }
                let mid = seps.len() / 2;
                let mut right_seps = seps.split_off(mid);
                let (up_sep, right_child0) = right_seps.remove(0);
                let right = self.alloc(
                    store,
                    &Node::Internal {
                        child0: right_child0,
                        seps: right_seps,
                    },
                )?;
                self.write(store, page, &Node::Internal { child0, seps })?;
                Ok(Some((up_sep, right)))
            }
        }
    }

    /// Bulk-load a tree from entries that are already sorted by
    /// `(key, payload)`. Much faster than repeated inserts; used by the
    /// data generator.
    pub fn bulk_load(store: &mut FileStore, sorted: &[Entry]) -> StorageResult<Self> {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let file = store.create_file();
        // Reserve page 0 as the (future) root.
        let root_placeholder = Node::Leaf {
            entries: Vec::new(),
            next: NO_PAGE,
        };
        let root = store.append_page(file, root_placeholder.encode())?.page;
        let tree = BTree {
            file,
            root,
            entries: sorted.len() as u64,
        };
        if sorted.is_empty() {
            return Ok(tree);
        }

        // Build the leaf level. Fill leaves to ~90% so later inserts
        // don't split immediately.
        let per_leaf = (LEAF_CAP * 9 / 10).max(1);
        let mut level: Vec<(Entry, u32)> = Vec::new(); // (min entry, page)
        let mut chunks = sorted.chunks(per_leaf).peekable();
        let mut pages: Vec<u32> = Vec::new();
        while let Some(chunk) = chunks.next() {
            let node = Node::Leaf {
                entries: chunk.to_vec(),
                next: NO_PAGE, // patched below
            };
            let page = store.append_page(file, node.encode())?.page;
            pages.push(page);
            level.push((chunk[0], page));
            let _ = chunks.peek();
        }
        // Patch the leaf chain.
        for i in 0..pages.len() {
            let next = if i + 1 < pages.len() {
                pages[i + 1]
            } else {
                NO_PAGE
            };
            let bytes = store.read_page(PageId::new(file, pages[i]))?;
            if let Node::Leaf { entries, .. } = Node::decode(&bytes) {
                store.write_page(
                    PageId::new(file, pages[i]),
                    Node::Leaf { entries, next }.encode(),
                )?;
            }
        }

        // Build internal levels bottom-up.
        let per_int = (INT_CAP * 9 / 10).max(2);
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for group in level.chunks(per_int + 1) {
                let child0 = group[0].1;
                let seps: Vec<(Entry, u32)> = group[1..].to_vec();
                let node = Node::Internal { child0, seps };
                let page = store.append_page(file, node.encode())?.page;
                next_level.push((group[0].0, page));
            }
            level = next_level;
        }

        // Copy the single top node into the reserved root page.
        let top = level[0].1;
        let top_bytes = store.read_page(PageId::new(file, top))?;
        store.write_page(PageId::new(file, root), top_bytes)?;
        Ok(tree)
    }

    /// Delete one occurrence of `entry`. Returns `true` if it was
    /// present. Underfull nodes are rebalanced by borrowing from or
    /// merging with a sibling; an empty internal root collapses so the
    /// tree shrinks cleanly. (Merged-away pages are left unreferenced;
    /// the page-file allocator of this store is append-only, matching
    /// how real engines defer index page reclamation to REORG.)
    pub fn delete(&mut self, store: &mut FileStore, entry: Entry) -> StorageResult<bool> {
        let deleted = self.delete_rec(store, self.root, entry)?;
        if deleted {
            self.entries -= 1;
            // Collapse a root that became a single-child internal node.
            loop {
                match self.read(store, self.root)? {
                    Node::Internal { child0, seps } if seps.is_empty() => {
                        let child = self.read(store, child0)?;
                        self.write(store, self.root, &child)?;
                    }
                    _ => break,
                }
            }
        }
        Ok(deleted)
    }

    /// Recursive delete; returns whether the entry was found.
    fn delete_rec(&self, store: &mut FileStore, page: u32, entry: Entry) -> StorageResult<bool> {
        match self.read(store, page)? {
            Node::Leaf { mut entries, next } => {
                let Ok(pos) = entries.binary_search(&entry) else {
                    return Ok(false);
                };
                entries.remove(pos);
                self.write(store, page, &Node::Leaf { entries, next })?;
                Ok(true)
            }
            Node::Internal { child0, mut seps } => {
                let idx = seps.partition_point(|(s, _)| *s <= entry);
                let child = if idx == 0 { child0 } else { seps[idx - 1].1 };
                if !self.delete_rec(store, child, entry)? {
                    return Ok(false);
                }
                // Rebalance the child if it fell below the minimum fill.
                self.rebalance_child(store, page, child0, &mut seps, idx, child)?;
                Ok(true)
            }
        }
    }

    /// After a deletion inside `child` (the `idx`-th child of the parent
    /// described by `child0`/`seps`), borrow from or merge with an
    /// adjacent sibling if the child is underfull, then rewrite the
    /// parent.
    fn rebalance_child(
        &self,
        store: &mut FileStore,
        parent_page: u32,
        child0: u32,
        seps: &mut Vec<(Entry, u32)>,
        idx: usize,
        child: u32,
    ) -> StorageResult<()> {
        let underfull = match self.read(store, child)? {
            Node::Leaf { ref entries, .. } => entries.len() < LEAF_CAP / 4,
            Node::Internal { ref seps, .. } => seps.len() < INT_CAP / 4,
        };
        if !underfull || seps.is_empty() {
            return Ok(());
        }
        // Prefer the right sibling; fall back to the left one.
        let (left_idx, left, right) = if idx < seps.len() {
            (idx, child, seps[idx].1)
        } else {
            let left = if idx - 1 == 0 {
                child0
            } else {
                seps[idx - 2].1
            };
            (idx - 1, left, child)
        };
        let ln = self.read(store, left)?;
        let rn = self.read(store, right)?;
        match (ln, rn) {
            (
                Node::Leaf {
                    entries: mut le,
                    next: _,
                },
                Node::Leaf {
                    entries: mut re,
                    next: rnext,
                },
            ) => {
                if le.len() + re.len() <= LEAF_CAP {
                    // Merge right into left; drop the separator.
                    le.append(&mut re);
                    self.write(
                        store,
                        left,
                        &Node::Leaf {
                            entries: le,
                            next: rnext,
                        },
                    )?;
                    seps.remove(left_idx);
                } else {
                    // Rebalance evenly across the two leaves.
                    let mut all = le;
                    all.append(&mut re);
                    let half = all.len() / 2;
                    let right_entries = all.split_off(half);
                    let new_sep = right_entries[0];
                    self.write(
                        store,
                        left,
                        &Node::Leaf {
                            entries: all,
                            next: right,
                        },
                    )?;
                    self.write(
                        store,
                        right,
                        &Node::Leaf {
                            entries: right_entries,
                            next: rnext,
                        },
                    )?;
                    seps[left_idx].0 = new_sep;
                }
            }
            (
                Node::Internal {
                    child0: lc0,
                    seps: mut ls,
                },
                Node::Internal {
                    child0: rc0,
                    seps: mut rs,
                },
            ) => {
                let parent_sep = seps[left_idx].0;
                if ls.len() + rs.len() < INT_CAP {
                    // Merge: pull the parent separator down.
                    ls.push((parent_sep, rc0));
                    ls.append(&mut rs);
                    self.write(
                        store,
                        left,
                        &Node::Internal {
                            child0: lc0,
                            seps: ls,
                        },
                    )?;
                    seps.remove(left_idx);
                } else {
                    // Rotate through the parent to even out.
                    let mut all: Vec<(Entry, u32)> = Vec::new();
                    all.append(&mut ls);
                    all.push((parent_sep, rc0));
                    all.append(&mut rs);
                    let half = all.len() / 2;
                    let mut right_part = all.split_off(half);
                    let (up, new_rc0) = right_part.remove(0);
                    self.write(
                        store,
                        left,
                        &Node::Internal {
                            child0: lc0,
                            seps: all,
                        },
                    )?;
                    self.write(
                        store,
                        right,
                        &Node::Internal {
                            child0: new_rc0,
                            seps: right_part,
                        },
                    )?;
                    seps[left_idx].0 = up;
                }
            }
            _ => unreachable!("siblings are at the same level"),
        }
        self.write(
            store,
            parent_page,
            &Node::Internal {
                child0,
                seps: seps.clone(),
            },
        )?;
        Ok(())
    }

    /// Find the leaf page and position of the first entry `>= probe`.
    fn seek(&self, store: &FileStore, probe: Entry) -> StorageResult<(u32, usize)> {
        let mut page = self.root;
        loop {
            match self.read(store, page)? {
                Node::Internal { child0, seps } => {
                    let idx = seps.partition_point(|(s, _)| *s <= probe);
                    page = if idx == 0 { child0 } else { seps[idx - 1].1 };
                }
                Node::Leaf { entries, .. } => {
                    let pos = entries.partition_point(|e| *e < probe);
                    return Ok((page, pos));
                }
            }
        }
    }

    /// Collect every entry with `lo <= key <= hi`, in `(key, payload)`
    /// order. This materializes the scan's "index order" up front — the
    /// engine's scan operators iterate the result while the sharing
    /// manager reasons about positions within it.
    pub fn range(&self, store: &FileStore, lo: i64, hi: i64) -> StorageResult<Vec<Entry>> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let (mut page, mut pos) = self.seek(store, Entry::min_for_key(lo))?;
        loop {
            let Node::Leaf { entries, next } = self.read(store, page)? else {
                unreachable!("seek always lands on a leaf");
            };
            for e in &entries[pos..] {
                if e.key > hi {
                    return Ok(out);
                }
                out.push(*e);
            }
            if next == NO_PAGE {
                return Ok(out);
            }
            page = next;
            pos = 0;
        }
    }

    /// All entries in the tree, in order.
    pub fn all(&self, store: &FileStore) -> StorageResult<Vec<Entry>> {
        self.range(store, i64::MIN, i64::MAX)
    }

    /// Shape statistics (walks the leftmost spine and the leaf chain).
    pub fn stats(&self, store: &FileStore) -> StorageResult<BTreeStats> {
        let mut height = 1;
        let mut page = self.root;
        while let Node::Internal { child0, .. } = self.read(store, page)? {
            height += 1;
            page = child0;
        }
        let mut leaf_pages = 0;
        let mut p = page;
        loop {
            leaf_pages += 1;
            match self.read(store, p)? {
                Node::Leaf { next, .. } if next != NO_PAGE => p = next,
                _ => break,
            }
        }
        Ok(BTreeStats {
            height,
            entries: self.entries,
            leaf_pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> FileStore {
        FileStore::new(16)
    }

    #[test]
    fn empty_tree_has_no_entries() {
        let mut st = store();
        let t = BTree::create(&mut st).unwrap();
        assert_eq!(t.all(&st).unwrap(), vec![]);
        assert_eq!(t.range(&st, 0, 100).unwrap(), vec![]);
    }

    #[test]
    fn insert_and_range_small() {
        let mut st = store();
        let mut t = BTree::create(&mut st).unwrap();
        for k in [5i64, 1, 9, 3, 7] {
            t.insert(&mut st, Entry::new(k, k as u64 * 10)).unwrap();
        }
        let got = t.range(&st, 3, 7).unwrap();
        assert_eq!(
            got,
            vec![Entry::new(3, 30), Entry::new(5, 50), Entry::new(7, 70)]
        );
    }

    #[test]
    fn duplicates_are_ordered_by_payload() {
        let mut st = store();
        let mut t = BTree::create(&mut st).unwrap();
        for p in [30u64, 10, 20] {
            t.insert(&mut st, Entry::new(42, p)).unwrap();
        }
        let got = t.range(&st, 42, 42).unwrap();
        assert_eq!(
            got,
            vec![Entry::new(42, 10), Entry::new(42, 20), Entry::new(42, 30)]
        );
    }

    #[test]
    fn inserts_split_leaves_and_internals() {
        let mut st = store();
        let mut t = BTree::create(&mut st).unwrap();
        let n = (LEAF_CAP * 6) as i64;
        // Insert in a scrambled order to exercise mid-node splits.
        let mut keys: Vec<i64> = (0..n).collect();
        let mut state = 12345u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for k in keys {
            t.insert(&mut st, Entry::new(k, k as u64)).unwrap();
        }
        let all = t.all(&st).unwrap();
        assert_eq!(all.len() as i64, n);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all[0], Entry::new(0, 0));
        assert_eq!(all[all.len() - 1], Entry::new(n - 1, (n - 1) as u64));
        let stats = t.stats(&st).unwrap();
        assert!(stats.height >= 2);
        assert!(stats.leaf_pages >= 6);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let mut st = store();
        let entries: Vec<Entry> = (0..(LEAF_CAP as i64 * 3))
            .map(|k| Entry::new(k / 4, k as u64)) // duplicate keys
            .collect();
        let t = BTree::bulk_load(&mut st, &entries).unwrap();
        assert_eq!(t.all(&st).unwrap(), entries);
        assert_eq!(t.num_entries(), entries.len() as u64);
    }

    #[test]
    fn bulk_load_empty() {
        let mut st = store();
        let t = BTree::bulk_load(&mut st, &[]).unwrap();
        assert_eq!(t.all(&st).unwrap(), vec![]);
    }

    #[test]
    fn bulk_load_single_leaf() {
        let mut st = store();
        let entries = vec![Entry::new(1, 1), Entry::new(2, 2)];
        let t = BTree::bulk_load(&mut st, &entries).unwrap();
        assert_eq!(t.all(&st).unwrap(), entries);
        assert_eq!(t.stats(&st).unwrap().height, 1);
    }

    #[test]
    fn range_bounds_are_inclusive() {
        let mut st = store();
        let entries: Vec<Entry> = (0..100).map(|k| Entry::new(k, k as u64)).collect();
        let t = BTree::bulk_load(&mut st, &entries).unwrap();
        assert_eq!(t.range(&st, 10, 12).unwrap().len(), 3);
        assert_eq!(t.range(&st, 99, 200).unwrap().len(), 1);
        assert_eq!(t.range(&st, -5, -1).unwrap().len(), 0);
        assert_eq!(t.range(&st, 7, 3).unwrap().len(), 0);
    }

    #[test]
    fn delete_simple() {
        let mut st = store();
        let mut t = BTree::create(&mut st).unwrap();
        for k in 0..10i64 {
            t.insert(&mut st, Entry::new(k, k as u64)).unwrap();
        }
        assert!(t.delete(&mut st, Entry::new(5, 5)).unwrap());
        assert!(!t.delete(&mut st, Entry::new(5, 5)).unwrap());
        assert_eq!(t.num_entries(), 9);
        let keys: Vec<i64> = t.all(&st).unwrap().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn delete_respects_duplicate_payloads() {
        let mut st = store();
        let mut t = BTree::create(&mut st).unwrap();
        for p in 0..3u64 {
            t.insert(&mut st, Entry::new(7, p)).unwrap();
        }
        assert!(t.delete(&mut st, Entry::new(7, 1)).unwrap());
        assert_eq!(
            t.range(&st, 7, 7).unwrap(),
            vec![Entry::new(7, 0), Entry::new(7, 2)]
        );
    }

    #[test]
    fn delete_everything_leaves_an_empty_tree() {
        let mut st = store();
        let n = LEAF_CAP as i64 * 4;
        let entries: Vec<Entry> = (0..n).map(|k| Entry::new(k, k as u64)).collect();
        let mut t = BTree::bulk_load(&mut st, &entries).unwrap();
        for e in &entries {
            assert!(t.delete(&mut st, *e).unwrap(), "missing {e:?}");
        }
        assert_eq!(t.num_entries(), 0);
        assert_eq!(t.all(&st).unwrap(), vec![]);
        // Insert again after full drain.
        t.insert(&mut st, Entry::new(42, 1)).unwrap();
        assert_eq!(t.all(&st).unwrap(), vec![Entry::new(42, 1)]);
    }

    #[test]
    fn interleaved_inserts_and_deletes_match_a_model() {
        let mut st = store();
        let mut t = BTree::create(&mut st).unwrap();
        let mut model: Vec<Entry> = Vec::new();
        let mut state = 0xDEADBEEFu64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..20_000u64 {
            let k = (rand() % 500) as i64;
            if rand() % 3 == 0 && !model.is_empty() {
                let victim = model[(rand() % model.len() as u64) as usize];
                assert!(t.delete(&mut st, victim).unwrap());
                let pos = model.iter().position(|e| *e == victim).unwrap();
                model.remove(pos);
            } else {
                let e = Entry::new(k, i);
                t.insert(&mut st, e).unwrap();
                let pos = model.partition_point(|m| *m <= e);
                model.insert(pos, e);
            }
        }
        assert_eq!(t.all(&st).unwrap(), model);
        assert_eq!(t.num_entries(), model.len() as u64);
    }

    #[test]
    fn deletes_shrink_and_rebalance_across_levels() {
        let mut st = store();
        let n = LEAF_CAP as i64 * 8;
        let entries: Vec<Entry> = (0..n).map(|k| Entry::new(k, k as u64)).collect();
        let mut t = BTree::bulk_load(&mut st, &entries).unwrap();
        assert!(t.stats(&st).unwrap().height >= 2);
        // Delete three quarters, front-loaded to force merges.
        for e in entries.iter().take(n as usize * 3 / 4) {
            assert!(t.delete(&mut st, *e).unwrap());
        }
        let rest = t.all(&st).unwrap();
        assert_eq!(rest.len(), n as usize / 4);
        assert_eq!(rest[0], entries[n as usize * 3 / 4]);
        assert!(rest.windows(2).all(|w| w[0] < w[1]));
        // Ranges still work after heavy rebalancing.
        let lo = rest[10].key;
        let hi = rest[50].key;
        assert_eq!(t.range(&st, lo, hi).unwrap().len(), 41);
    }

    #[test]
    fn inserts_after_bulk_load() {
        let mut st = store();
        let entries: Vec<Entry> = (0..(LEAF_CAP as i64 * 2))
            .map(|k| Entry::new(k * 2, k as u64))
            .collect();
        let mut t = BTree::bulk_load(&mut st, &entries).unwrap();
        // Insert odd keys between existing ones.
        for k in 0..200 {
            t.insert(&mut st, Entry::new(k * 2 + 1, 9999)).unwrap();
        }
        let all = t.all(&st).unwrap();
        assert_eq!(all.len(), entries.len() + 200);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }
}
