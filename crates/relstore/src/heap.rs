//! Slotted heap pages and append-only heap files.
//!
//! Page layout (all little-endian):
//!
//! ```text
//! +-------------------+--------------------------------+-----------------+
//! | n_slots | free_off| records, growing upward ...    | ... slot array  |
//! |  u16    |  u16    |                                | growing downward|
//! +-------------------+--------------------------------+-----------------+
//! 0         2         4                                          PAGE_SIZE
//! ```
//!
//! Each slot descriptor is 4 bytes (`offset: u16`, `len: u16`), stored from
//! the end of the page backwards. Records are addressed by [`Rid`]
//! (page number, slot number), the unit of scan location in the papers.

use bytes::BytesMut;
use scanshare_storage::{FileId, FileStore, PageId, StorageError, StorageResult, PAGE_SIZE};
use serde::{Deserialize, Serialize};

use crate::value::{Schema, Value};

const HEADER_LEN: usize = 4;
const SLOT_LEN: usize = 4;

/// Record identifier: a page number and a slot within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rid {
    /// Page number within the owning file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a RID.
    pub const fn new(page: u32, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Pack into a `u64` for use as a B+ tree payload.
    pub const fn pack(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Unpack from a B+ tree payload.
    pub const fn unpack(v: u64) -> Self {
        Rid {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// Read-only view over a slotted heap page.
#[derive(Clone, Copy)]
pub struct HeapPage<'a> {
    bytes: &'a [u8],
}

impl<'a> HeapPage<'a> {
    /// Wrap raw page bytes. Validates the header against the page size.
    pub fn new(bytes: &'a [u8]) -> StorageResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "heap page has {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let page = HeapPage { bytes };
        let n = page.num_rows() as usize;
        if HEADER_LEN + n * SLOT_LEN > PAGE_SIZE {
            return Err(StorageError::Corrupt(format!("slot count {n} impossible")));
        }
        Ok(page)
    }

    /// Number of records on the page.
    pub fn num_rows(&self) -> u16 {
        u16::from_le_bytes(self.bytes[0..2].try_into().unwrap())
    }

    /// The encoded bytes of the record in `slot`.
    pub fn row_bytes(&self, slot: u16) -> StorageResult<&'a [u8]> {
        if slot >= self.num_rows() {
            return Err(StorageError::Corrupt(format!(
                "slot {slot} out of range ({} rows)",
                self.num_rows()
            )));
        }
        let desc_at = PAGE_SIZE - SLOT_LEN * (slot as usize + 1);
        let off = u16::from_le_bytes(self.bytes[desc_at..desc_at + 2].try_into().unwrap()) as usize;
        let len =
            u16::from_le_bytes(self.bytes[desc_at + 2..desc_at + 4].try_into().unwrap()) as usize;
        if off + len > PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "slot {slot} points past page end"
            )));
        }
        Ok(&self.bytes[off..off + len])
    }

    /// Iterate the encoded bytes of every record on the page.
    pub fn rows(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        (0..self.num_rows()).map(move |s| self.row_bytes(s).expect("validated slot"))
    }

    /// Fast path for the pages [`HeapWriter`] produces from a fixed-width
    /// schema: every record is `width` bytes and they sit contiguously
    /// after the header, so iteration is a bounds-check-free
    /// `chunks_exact` with no per-slot descriptor decoding. The layout is
    /// verified in O(1) from the first and last slot descriptors (the
    /// writer assigns offsets monotonically, so those two pin down every
    /// slot in between for fixed-width records); any mismatch returns
    /// `None` and the caller falls back to [`HeapPage::rows`]. Yields
    /// exactly the same byte slices as `rows()` when it applies.
    pub fn rows_dense(&self, width: usize) -> Option<std::slice::ChunksExact<'a, u8>> {
        let n = self.num_rows() as usize;
        if width == 0 || n == 0 {
            return None;
        }
        let end = HEADER_LEN + n * width;
        if end > PAGE_SIZE - SLOT_LEN * n {
            return None;
        }
        let slot = |s: usize| -> (usize, usize) {
            let at = PAGE_SIZE - SLOT_LEN * (s + 1);
            (
                u16::from_le_bytes(self.bytes[at..at + 2].try_into().unwrap()) as usize,
                u16::from_le_bytes(self.bytes[at + 2..at + 4].try_into().unwrap()) as usize,
            )
        };
        let (first_off, first_len) = slot(0);
        let (last_off, last_len) = slot(n - 1);
        if first_off != HEADER_LEN
            || first_len != width
            || last_len != width
            || last_off != HEADER_LEN + (n - 1) * width
        {
            return None;
        }
        Some(self.bytes[HEADER_LEN..end].chunks_exact(width))
    }
}

/// Incremental builder for one slotted heap page.
#[derive(Debug)]
pub struct HeapPageBuilder {
    buf: BytesMut,
    n_slots: u16,
    free_off: u16,
}

impl HeapPageBuilder {
    /// Start an empty page.
    pub fn new() -> Self {
        HeapPageBuilder {
            buf: BytesMut::zeroed(PAGE_SIZE),
            n_slots: 0,
            free_off: HEADER_LEN as u16,
        }
    }

    /// Number of records so far.
    pub fn num_rows(&self) -> u16 {
        self.n_slots
    }

    /// Free bytes remaining (accounting for the new slot descriptor).
    pub fn free_space(&self) -> usize {
        let used_tail = SLOT_LEN * (self.n_slots as usize + 1);
        PAGE_SIZE
            .saturating_sub(self.free_off as usize)
            .saturating_sub(used_tail)
    }

    /// Append a record; returns the slot, or `None` if it does not fit.
    pub fn push(&mut self, record: &[u8]) -> Option<u16> {
        if record.len() > self.free_space() || record.len() > u16::MAX as usize {
            return None;
        }
        let slot = self.n_slots;
        let off = self.free_off as usize;
        self.buf[off..off + record.len()].copy_from_slice(record);
        let desc_at = PAGE_SIZE - SLOT_LEN * (slot as usize + 1);
        self.buf[desc_at..desc_at + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.buf[desc_at + 2..desc_at + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
        self.n_slots += 1;
        self.free_off += record.len() as u16;
        self.buf[0..2].copy_from_slice(&self.n_slots.to_le_bytes());
        self.buf[2..4].copy_from_slice(&self.free_off.to_le_bytes());
        Some(slot)
    }

    /// Finish the page, returning its bytes.
    pub fn finish(self) -> bytes::Bytes {
        self.buf.freeze()
    }
}

impl Default for HeapPageBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Metadata of a fully loaded heap file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeapFile {
    /// Backing file.
    pub file: FileId,
    /// Row schema.
    pub schema: Schema,
    /// Number of pages.
    pub num_pages: u32,
    /// Number of rows.
    pub num_rows: u64,
}

/// Appends encoded rows to a heap file page by page.
///
/// The writer must be the only appender to the file while it is open;
/// RIDs are assigned eagerly from the file length plus the open page.
#[derive(Debug)]
pub struct HeapWriter {
    file: FileId,
    schema: Schema,
    current: HeapPageBuilder,
    pages_flushed: u32,
    rows: u64,
    rowbuf: Vec<u8>,
}

impl HeapWriter {
    /// Start writing rows of `schema` into a fresh file of `store`.
    pub fn create(store: &mut FileStore, schema: Schema) -> Self {
        let file = store.create_file();
        HeapWriter {
            file,
            current: HeapPageBuilder::new(),
            pages_flushed: 0,
            rows: 0,
            rowbuf: vec![0u8; schema.row_width()],
            schema,
        }
    }

    /// The file being written.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Append one row; returns its RID.
    pub fn append(&mut self, store: &mut FileStore, values: &[Value]) -> StorageResult<Rid> {
        self.schema.encode_row(values, &mut self.rowbuf);
        let record = &self.rowbuf[..self.schema.row_width()];
        if let Some(slot) = self.current.push(record) {
            self.rows += 1;
            return Ok(Rid::new(self.pages_flushed, slot));
        }
        // Flush the full page and retry on a fresh one.
        let full = std::mem::take(&mut self.current).finish();
        store.append_page(self.file, full)?;
        self.pages_flushed += 1;
        let slot = self
            .current
            .push(record)
            .ok_or(StorageError::PageOverflow {
                needed: record.len(),
                available: PAGE_SIZE - HEADER_LEN - SLOT_LEN,
            })?;
        self.rows += 1;
        Ok(Rid::new(self.pages_flushed, slot))
    }

    /// Flush the open page (if nonempty) and return the file metadata.
    pub fn finish(mut self, store: &mut FileStore) -> StorageResult<HeapFile> {
        if self.current.num_rows() > 0 {
            let page = std::mem::take(&mut self.current).finish();
            store.append_page(self.file, page)?;
            self.pages_flushed += 1;
        }
        Ok(HeapFile {
            file: self.file,
            schema: self.schema,
            num_pages: self.pages_flushed,
            num_rows: self.rows,
        })
    }
}

/// Fetch and decode the record at `rid` straight from the store
/// (test/debug path; query execution goes through the buffer pool).
pub fn fetch_row(store: &FileStore, heap: &HeapFile, rid: Rid) -> StorageResult<Vec<Value>> {
    let page = store.read_page(PageId::new(heap.file, rid.page))?;
    let view = HeapPage::new(&page)?;
    Ok(heap.schema.decode_row(view.row_bytes(rid.slot)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColType, Column};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", ColType::Int64),
            Column::new("v", ColType::Float64),
        ])
    }

    #[test]
    fn rid_pack_roundtrip() {
        let r = Rid::new(123_456, 789);
        assert_eq!(Rid::unpack(r.pack()), r);
    }

    #[test]
    fn page_builder_roundtrip() {
        let mut b = HeapPageBuilder::new();
        let s0 = b.push(b"hello").unwrap();
        let s1 = b.push(b"world!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        let bytes = b.finish();
        let page = HeapPage::new(&bytes).unwrap();
        assert_eq!(page.num_rows(), 2);
        assert_eq!(page.row_bytes(0).unwrap(), b"hello");
        assert_eq!(page.row_bytes(1).unwrap(), b"world!");
        let all: Vec<_> = page.rows().collect();
        assert_eq!(all, vec![&b"hello"[..], &b"world!"[..]]);
    }

    #[test]
    fn page_fills_up() {
        let mut b = HeapPageBuilder::new();
        let rec = [0u8; 100];
        let mut n = 0;
        while b.push(&rec).is_some() {
            n += 1;
        }
        // 100 bytes payload + 4 bytes slot = 104 per row; header 4 bytes.
        assert_eq!(n, (PAGE_SIZE - HEADER_LEN) / 104);
        assert!(b.free_space() < 104);
    }

    #[test]
    fn dense_rows_match_the_slot_path() {
        let mut b = HeapPageBuilder::new();
        for i in 0..200u8 {
            b.push(&[i; 21]).unwrap();
        }
        let bytes = b.finish();
        let page = HeapPage::new(&bytes).unwrap();
        let dense: Vec<_> = page.rows_dense(21).expect("fixed-width page").collect();
        let slow: Vec<_> = page.rows().collect();
        assert_eq!(dense, slow);
        // Wrong width or variable-length records fall back to None.
        assert!(page.rows_dense(20).is_none());
        assert!(page.rows_dense(0).is_none());
        let mut v = HeapPageBuilder::new();
        v.push(b"short").unwrap();
        v.push(b"a bit longer").unwrap();
        let vbytes = v.finish();
        assert!(HeapPage::new(&vbytes).unwrap().rows_dense(5).is_none());
    }

    #[test]
    fn slot_out_of_range_errors() {
        let mut b = HeapPageBuilder::new();
        b.push(b"x").unwrap();
        let bytes = b.finish();
        let page = HeapPage::new(&bytes).unwrap();
        assert!(page.row_bytes(1).is_err());
    }

    #[test]
    fn writer_spills_across_pages_and_rids_are_stable() {
        let mut store = FileStore::new(16);
        let s = schema();
        let mut w = HeapWriter::create(&mut store, s.clone());
        let n = 2000u64;
        let mut rids = Vec::new();
        for i in 0..n {
            let rid = w
                .append(&mut store, &[Value::I64(i as i64), Value::F64(i as f64)])
                .unwrap();
            rids.push(rid);
        }
        let heap = w.finish(&mut store).unwrap();
        assert_eq!(heap.num_rows, n);
        assert!(heap.num_pages > 1);
        assert_eq!(store.num_pages(heap.file).unwrap(), heap.num_pages);
        // Spot-check RIDs resolve to the right rows.
        for &i in &[0u64, 1, 511, 512, 1999] {
            let row = fetch_row(&store, &heap, rids[i as usize]).unwrap();
            assert_eq!(row[0], Value::I64(i as i64));
        }
        // Pages are dense: every page but possibly the last is full.
        let rows_per_page = (PAGE_SIZE - HEADER_LEN) / (s.row_width() + SLOT_LEN);
        for p in 0..heap.num_pages - 1 {
            let bytes = store.read_page(PageId::new(heap.file, p)).unwrap();
            assert_eq!(
                HeapPage::new(&bytes).unwrap().num_rows() as usize,
                rows_per_page
            );
        }
    }

    #[test]
    fn corrupt_pages_are_rejected() {
        assert!(HeapPage::new(&[0u8; 12]).is_err());
        let mut bytes = vec![0u8; PAGE_SIZE];
        bytes[0..2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(HeapPage::new(&bytes).is_err());
    }
}
