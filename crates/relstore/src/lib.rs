//! Relational storage for the `scanshare` reproduction.
//!
//! Everything a mini decision-support engine needs on top of raw pages:
//!
//! * [`value`] — column types, a fixed-width row codec, and zero-copy row
//!   views ([`value::RowRef`]) so that predicate evaluation never allocates,
//! * [`heap`] — slotted heap pages and append-only heap files with RIDs,
//! * [`btree`] — a paged B+ tree over `(i64 key, u64 payload)` entries with
//!   duplicate keys, used both as a RID index and as an MDC block index,
//! * [`mdc`] — an MDC-style block-clustered table: rows are placed into
//!   16-page blocks per clustering-key cell, blocks from different cells
//!   interleave on disk (which is what makes key-order traversal seek),
//! * [`catalog`] — table metadata shared by the engine.
//!
//! Index pages are read directly from the store rather than through the
//! buffer pool: the papers explicitly exclude index-page sharing ("we are
//! not discussing replacement of index-only scans") and the non-leaf
//! levels of a DSS index are resident in practice. Only *table* pages flow
//! through the buffer pool and the disk model.

pub mod btree;
pub mod catalog;
pub mod heap;
pub mod mdc;
pub mod value;

pub use btree::{BTree, BTreeStats, Entry};
pub use catalog::{TableKind, TableMeta};
pub use heap::{HeapFile, HeapPage, HeapPageBuilder, HeapWriter, Rid};
pub use mdc::{BlockId, MdcTable, MdcTableBuilder};
pub use value::{ColType, Column, RowRef, Schema, Value};
