//! Physical volume layout.
//!
//! Files grow in extent-sized runs. Each time a file touches a new extent,
//! the volume hands it the next free physical run. Two files (or two MDC
//! cells writing to the same file through block allocation) that grow
//! concurrently therefore interleave on the physical address space — which
//! is what makes index-order traversal seek, and what the scan-sharing
//! machinery ultimately saves.

use std::collections::HashMap;

use crate::page::{FileId, PageId};

/// Maps logical file pages to physical page addresses, allocating
/// extent-sized contiguous runs on first touch.
#[derive(Debug)]
pub struct Volume {
    extent_pages: u32,
    next_base: u64,
    extents: HashMap<(FileId, u32), u64>,
}

impl Volume {
    /// Create an empty volume allocating runs of `extent_pages` pages.
    pub fn new(extent_pages: u32) -> Self {
        assert!(extent_pages > 0, "extent size must be positive");
        Volume {
            extent_pages,
            next_base: 0,
            extents: HashMap::new(),
        }
    }

    /// Number of pages per extent run.
    pub fn extent_pages(&self) -> u32 {
        self.extent_pages
    }

    /// Physical address of `id`, allocating the containing extent if the
    /// file has never touched it. Used on the write/append path.
    pub fn ensure(&mut self, id: PageId) -> u64 {
        let extent_no = id.page / self.extent_pages;
        let within = (id.page % self.extent_pages) as u64;
        let extent_pages = self.extent_pages as u64;
        let next_base = &mut self.next_base;
        let base = *self.extents.entry((id.file, extent_no)).or_insert_with(|| {
            let b = *next_base;
            *next_base += extent_pages;
            b
        });
        base + within
    }

    /// Physical address of `id` if its extent has been allocated.
    pub fn lookup(&self, id: PageId) -> Option<u64> {
        let extent_no = id.page / self.extent_pages;
        let within = (id.page % self.extent_pages) as u64;
        self.extents
            .get(&(id.file, extent_no))
            .map(|base| base + within)
    }

    /// Total physical pages allocated so far.
    pub fn allocated_pages(&self) -> u64 {
        self.next_base
    }

    /// The allocation state as `(file, extent_no, base)` rows, sorted —
    /// used to persist a volume.
    pub fn entries(&self) -> Vec<(FileId, u32, u64)> {
        let mut out: Vec<(FileId, u32, u64)> =
            self.extents.iter().map(|(&(f, e), &b)| (f, e, b)).collect();
        out.sort();
        out
    }

    /// Rebuild a volume from persisted state.
    pub fn from_entries(extent_pages: u32, entries: &[(FileId, u32, u64)]) -> Self {
        assert!(extent_pages > 0, "extent size must be positive");
        let mut extents = HashMap::with_capacity(entries.len());
        let mut next_base = 0u64;
        for &(f, e, b) in entries {
            extents.insert((f, e), b);
            next_base = next_base.max(b + extent_pages as u64);
        }
        Volume {
            extent_pages,
            next_base,
            extents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(file: u32, page: u32) -> PageId {
        PageId::new(FileId(file), page)
    }

    #[test]
    fn pages_within_extent_are_contiguous() {
        let mut v = Volume::new(4);
        let a = v.ensure(pid(0, 0));
        let b = v.ensure(pid(0, 1));
        let c = v.ensure(pid(0, 3));
        assert_eq!(b, a + 1);
        assert_eq!(c, a + 3);
    }

    #[test]
    fn interleaved_growth_interleaves_extents() {
        let mut v = Volume::new(4);
        let a0 = v.ensure(pid(0, 0)); // file 0, extent 0
        let b0 = v.ensure(pid(1, 0)); // file 1, extent 0
        let a4 = v.ensure(pid(0, 4)); // file 0, extent 1
        assert_eq!(a0, 0);
        assert_eq!(b0, 4);
        assert_eq!(a4, 8);
        // File 0's two extents are NOT physically adjacent.
        assert_ne!(a4, a0 + 4);
        assert_eq!(v.allocated_pages(), 12);
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut v = Volume::new(8);
        let first = v.ensure(pid(2, 5));
        let again = v.ensure(pid(2, 5));
        assert_eq!(first, again);
        assert_eq!(v.allocated_pages(), 8);
    }

    #[test]
    fn entries_roundtrip_preserves_layout() {
        let mut v = Volume::new(4);
        v.ensure(pid(0, 0));
        v.ensure(pid(1, 0));
        v.ensure(pid(0, 4));
        let rebuilt = Volume::from_entries(4, &v.entries());
        assert_eq!(rebuilt.allocated_pages(), v.allocated_pages());
        for id in [pid(0, 0), pid(0, 5), pid(1, 3)] {
            assert_eq!(rebuilt.lookup(id), v.lookup(id));
        }
    }

    #[test]
    fn lookup_does_not_allocate() {
        let mut v = Volume::new(8);
        assert_eq!(v.lookup(pid(0, 0)), None);
        v.ensure(pid(0, 0));
        assert_eq!(v.lookup(pid(0, 7)), Some(7));
        assert_eq!(v.lookup(pid(0, 8)), None);
        assert_eq!(v.allocated_pages(), 8);
    }
}
