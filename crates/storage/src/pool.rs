//! Buffer pool with priority-aware replacement.
//!
//! The papers treat the caching subsystem as a black box with one extra
//! knob: every scan *releases* each processed page with a **priority**
//! ("release page(l) with priority p"), and the replacement policy prefers
//! to victimize low-priority pages first. The scan-sharing manager turns
//! that knob: group **leaders** release pages with high priority (the rest
//! of the group still needs them), **trailers** release with low priority
//! (nobody is following, the page can go).
//!
//! Two policies are provided:
//!
//! * [`ReplacementPolicy::Lru`] — the baseline: priorities are ignored and
//!   the least-recently-used unpinned page is evicted,
//! * [`ReplacementPolicy::PriorityLru`] — the prototype: the victim is the
//!   unpinned page with the lowest priority, LRU within a priority class.
//!
//! # Frame table
//!
//! Frames live in a slab (`Vec<Frame>` indexed by a `u32` slot, with a
//! free-slot list) and a `HashMap<PageId, u32>` maps resident pages to
//! their slot. Eviction candidates — unpinned frames — are threaded onto
//! one intrusive doubly-linked list per priority class, ordered by
//! ascending `last_use` from the head; the victim is the head of the
//! lowest non-empty class. Because a scan's releases may arrive out of
//! fix order (extents release in sorted-page order, RID fetches in RID
//! order), enqueueing walks back from the list tail to the frame's
//! `last_use` position — O(1) amortized for the common mostly-in-order
//! release streams, and correct for all of them. `fix`, `release`,
//! reprioritize, and evict are therefore O(1); only [`ReplacementPolicy::Lru2`]
//! keeps a small ordered set, because its victim key (`prev_use`) is not
//! unique and needs the page-id tie-break.
//!
//! The pool does not perform I/O itself. `fix` either returns the resident
//! page or reports a miss; the caller loads the bytes (paying the disk
//! model's cost) and hands them back via `complete_miss`. This mirrors the
//! paper's architecture where the sharing manager never talks to the disk.
//! Callers that only inspect rows can use the slot-based API
//! ([`BufferPool::fix_slot`], [`BufferPool::slot_buf`]) to borrow the page
//! bytes without cloning the `Bytes` handle on every hit.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::page::{PageBuf, PageId};

/// Priority assigned to a page when it is released.
///
/// Ordering matters: lower values are victimized first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PagePriority {
    /// Evict first: no ongoing scan will need this page soon (trailers).
    Low = 0,
    /// Default priority.
    Normal = 1,
    /// Keep if possible: following scans need this page soon (leaders).
    High = 2,
}

/// Which replacement policy the pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Classic LRU; release priorities are accepted but ignored.
    Lru,
    /// Priority-first, LRU within a priority class.
    PriorityLru,
    /// LRU-2 (LRU-K with K = 2, O'Neil et al.): victimize the page whose
    /// *second-to-last* access is oldest; pages referenced only once are
    /// evicted before any re-referenced page. A general-purpose
    /// improvement from the paper's related work — included to show that
    /// smarter generic replacement does not rescue concurrent scans the
    /// way coordinated sharing does.
    Lru2,
}

/// Pool construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Number of page frames.
    pub capacity: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl PoolConfig {
    /// Convenience constructor.
    pub fn new(capacity: usize, policy: ReplacementPolicy) -> Self {
        PoolConfig { capacity, policy }
    }
}

/// Counters maintained by the pool.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Total `fix` calls.
    pub logical_reads: u64,
    /// `fix` calls satisfied from a resident frame.
    pub hits: u64,
    /// `fix` calls that required a physical read.
    pub misses: u64,
    /// Frames victimized to make room.
    pub evictions: u64,
    /// Releases whose priority hint *changed* the frame's priority — the
    /// release-path re-prioritizations of §7.3 (leader marks pages High,
    /// trailer marks them Low). Absent in older artifacts.
    #[serde(default)]
    pub reprioritizations: u64,
}

impl PoolStats {
    /// Hit ratio in [0, 1]; zero when no reads occurred.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

/// One resident frame, as reported by [`BufferPool::resident_pages`] —
/// what a live dashboard needs to draw a residency heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidentPage {
    /// The resident page.
    pub id: PageId,
    /// Its current release priority.
    pub priority: PagePriority,
    /// Whether it is pinned right now.
    pub pinned: bool,
}

/// Result of a `fix` call.
#[derive(Debug, Clone)]
pub enum FixOutcome {
    /// The page is resident; it is now pinned and its bytes are returned.
    Hit(PageBuf),
    /// The page is not resident. The caller must load it and call
    /// `complete_miss`. No frame is reserved yet.
    Miss,
}

/// Link sentinel for the intrusive lists ("no neighbor").
const NIL: u32 = u32::MAX;

/// Number of priority classes (`PagePriority` has three variants).
const CLASSES: usize = 3;

#[derive(Debug)]
struct Frame {
    id: PageId,
    buf: PageBuf,
    pin_count: u32,
    priority: PagePriority,
    last_use: u64,
    /// Second-to-last access (0 until the page is re-referenced).
    prev_use: u64,
    /// Intrusive candidate-list links; `NIL` when pinned or free.
    prev: u32,
    next: u32,
}

/// One intrusive candidate list: unpinned frames of one priority class,
/// ordered by ascending `last_use` from `head` (the victim end).
#[derive(Debug, Clone, Copy)]
struct CandidateList {
    head: u32,
    tail: u32,
}

impl CandidateList {
    const fn empty() -> Self {
        CandidateList {
            head: NIL,
            tail: NIL,
        }
    }
}

/// The buffer pool.
///
/// ```
/// use scanshare_storage::{BufferPool, PoolConfig, ReplacementPolicy,
///                         PagePriority, FixOutcome, PageId, FileId,
///                         page::zeroed_page};
///
/// let mut pool = BufferPool::new(PoolConfig::new(2, ReplacementPolicy::PriorityLru));
/// let page = PageId::new(FileId(0), 7);
/// // Miss: the caller loads the bytes and completes the fix.
/// assert!(matches!(pool.fix(page), FixOutcome::Miss));
/// pool.complete_miss(page, zeroed_page().freeze()).unwrap();
/// // Release with the paper's priority hint.
/// pool.release(page, PagePriority::High).unwrap();
/// assert!(matches!(pool.fix(page), FixOutcome::Hit(_)));
/// pool.release(page, PagePriority::High).unwrap();
/// assert_eq!(pool.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct BufferPool {
    cfg: PoolConfig,
    /// Slab of frames; slots are stable while a page stays resident.
    frames: Vec<Frame>,
    /// Slots available for reuse (their frames are not resident).
    free: Vec<u32>,
    /// Resident page → slot.
    map: HashMap<PageId, u32>,
    /// Candidate lists indexed by priority class. Under plain LRU every
    /// candidate lives in the `Normal` class; under priority-LRU a frame
    /// lives in the class of its current priority.
    lists: [CandidateList; CLASSES],
    /// LRU-2 candidate order: `(prev_use, id)` ascending. `prev_use` is
    /// zero for every once-referenced page, so unlike `last_use` it is
    /// not unique and the id tie-break is load-bearing.
    lru2: BTreeSet<(u64, PageId)>,
    use_seq: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Create a pool.
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.capacity > 0, "pool capacity must be positive");
        BufferPool {
            frames: Vec::with_capacity(cfg.capacity),
            free: Vec::new(),
            map: HashMap::with_capacity(cfg.capacity),
            lists: [CandidateList::empty(); CLASSES],
            lru2: BTreeSet::new(),
            use_seq: 0,
            stats: PoolStats::default(),
            cfg,
        }
    }

    /// Number of frames configured.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.cfg.policy
    }

    /// Whether `id` is resident (without touching its recency).
    pub fn contains(&self, id: PageId) -> bool {
        self.map.contains_key(&id)
    }

    /// Counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Priority class whose candidate list holds (or would hold) `slot`.
    /// Plain LRU ignores priorities, so everything shares one class.
    fn class_of(&self, slot: u32) -> usize {
        match self.cfg.policy {
            ReplacementPolicy::Lru => PagePriority::Normal as usize,
            ReplacementPolicy::PriorityLru => self.frames[slot as usize].priority as usize,
            ReplacementPolicy::Lru2 => unreachable!("LRU-2 candidates live in the ordered set"),
        }
    }

    /// Make an unpinned frame an eviction candidate.
    ///
    /// List invariant: each class list is ordered by ascending `last_use`.
    /// Releases usually arrive in fix order, so the insertion point is the
    /// tail and the walk is O(1) amortized; out-of-order releases (sorted
    /// extent batches, RID fetches) walk only past frames used *after*
    /// this one.
    fn enqueue(&mut self, slot: u32) {
        if self.cfg.policy == ReplacementPolicy::Lru2 {
            let f = &self.frames[slot as usize];
            self.lru2.insert((f.prev_use, f.id));
            return;
        }
        let class = self.class_of(slot);
        let last_use = self.frames[slot as usize].last_use;
        let mut after = self.lists[class].tail;
        while after != NIL && self.frames[after as usize].last_use > last_use {
            after = self.frames[after as usize].prev;
        }
        let before = if after == NIL {
            self.lists[class].head
        } else {
            self.frames[after as usize].next
        };
        {
            let f = &mut self.frames[slot as usize];
            f.prev = after;
            f.next = before;
        }
        if after == NIL {
            self.lists[class].head = slot;
        } else {
            self.frames[after as usize].next = slot;
        }
        if before == NIL {
            self.lists[class].tail = slot;
        } else {
            self.frames[before as usize].prev = slot;
        }
    }

    /// Remove a candidate frame from its list/set (it is being pinned,
    /// discarded, or evicted).
    fn dequeue(&mut self, slot: u32) {
        if self.cfg.policy == ReplacementPolicy::Lru2 {
            let f = &self.frames[slot as usize];
            self.lru2.remove(&(f.prev_use, f.id));
            return;
        }
        let class = self.class_of(slot);
        let (p, n) = {
            let f = &self.frames[slot as usize];
            (f.prev, f.next)
        };
        if p == NIL {
            self.lists[class].head = n;
        } else {
            self.frames[p as usize].next = n;
        }
        if n == NIL {
            self.lists[class].tail = p;
        } else {
            self.frames[n as usize].prev = p;
        }
        let f = &mut self.frames[slot as usize];
        f.prev = NIL;
        f.next = NIL;
    }

    /// The slot that would be evicted next: the head of the lowest
    /// non-empty priority class (LRU-2: the set minimum).
    fn victim_slot(&self) -> Option<u32> {
        if self.cfg.policy == ReplacementPolicy::Lru2 {
            return self.lru2.iter().next().map(|(_, id)| self.map[id]);
        }
        self.lists
            .iter()
            .find_map(|l| (l.head != NIL).then_some(l.head))
    }

    /// Pin an already-resident slot and refresh its recency.
    fn pin_resident(&mut self, slot: u32) {
        if self.frames[slot as usize].pin_count == 0 {
            self.dequeue(slot);
        }
        self.use_seq += 1;
        let seq = self.use_seq;
        let f = &mut self.frames[slot as usize];
        f.pin_count += 1;
        f.prev_use = f.last_use;
        f.last_use = seq;
    }

    /// Try to pin `id`. On a hit the frame's recency is refreshed and the
    /// bytes are returned; on a miss the caller is expected to load the
    /// page and call [`BufferPool::complete_miss`].
    pub fn fix(&mut self, id: PageId) -> FixOutcome {
        match self.fix_slot(id) {
            Some(slot) => FixOutcome::Hit(self.frames[slot as usize].buf.clone()),
            None => FixOutcome::Miss,
        }
    }

    /// Zero-clone `fix`: on a hit the page is pinned and its slot is
    /// returned; borrow the bytes via [`BufferPool::slot_buf`]. `None`
    /// is a miss — load the page and call
    /// [`BufferPool::complete_miss_slot`]. The slot stays valid (and the
    /// frame is never recycled) for as long as the page remains pinned.
    pub fn fix_slot(&mut self, id: PageId) -> Option<u32> {
        self.stats.logical_reads += 1;
        if let Some(&slot) = self.map.get(&id) {
            self.stats.hits += 1;
            self.pin_resident(slot);
            Some(slot)
        } else {
            self.use_seq += 1;
            self.stats.misses += 1;
            None
        }
    }

    /// Bytes of a pinned frame (see [`BufferPool::fix_slot`]).
    pub fn slot_buf(&self, slot: u32) -> &PageBuf {
        &self.frames[slot as usize].buf
    }

    /// Page held by a pinned frame (see [`BufferPool::fix_slot`]).
    pub fn slot_page(&self, slot: u32) -> PageId {
        self.frames[slot as usize].id
    }

    /// Install a page after a miss, evicting if necessary. The page is
    /// pinned for the caller. Fails with [`StorageError::PoolExhausted`]
    /// if every frame is pinned.
    pub fn complete_miss(&mut self, id: PageId, buf: PageBuf) -> StorageResult<()> {
        self.complete_miss_slot(id, buf).map(|_| ())
    }

    /// [`BufferPool::complete_miss`], returning the installed slot for
    /// the zero-clone path.
    pub fn complete_miss_slot(&mut self, id: PageId, buf: PageBuf) -> StorageResult<u32> {
        if let Some(&slot) = self.map.get(&id) {
            // Someone else installed it while we were loading; just pin
            // (their bytes win — both loaders read the same page).
            self.pin_resident(slot);
            return Ok(slot);
        }
        let slot = if self.map.len() >= self.cfg.capacity {
            let victim = self.victim_slot().ok_or(StorageError::PoolExhausted {
                capacity: self.cfg.capacity,
            })?;
            self.dequeue(victim);
            let vid = self.frames[victim as usize].id;
            self.map.remove(&vid);
            self.stats.evictions += 1;
            victim
        } else if let Some(slot) = self.free.pop() {
            slot
        } else {
            let slot = self.frames.len() as u32;
            self.frames.push(Frame {
                id,
                buf: PageBuf::new(),
                pin_count: 0,
                priority: PagePriority::Normal,
                last_use: 0,
                prev_use: 0,
                prev: NIL,
                next: NIL,
            });
            slot
        };
        self.use_seq += 1;
        let f = &mut self.frames[slot as usize];
        f.id = id;
        f.buf = buf;
        f.pin_count = 1;
        f.priority = PagePriority::Normal;
        f.last_use = self.use_seq;
        f.prev_use = 0;
        f.prev = NIL;
        f.next = NIL;
        self.map.insert(id, slot);
        Ok(slot)
    }

    /// Unpin a page, attaching the release priority hint — the paper's
    /// "release page with priority p". The hint overwrites any previous
    /// priority: the *last* scan over a page decides its fate, which is
    /// exactly the leader/trailer semantics of §7.3.
    pub fn release(&mut self, id: PageId, priority: PagePriority) -> StorageResult<()> {
        let &slot = self.map.get(&id).ok_or(StorageError::NotResident(id))?;
        let f = &mut self.frames[slot as usize];
        if f.pin_count == 0 {
            return Err(StorageError::PinViolation(id));
        }
        f.pin_count -= 1;
        if f.priority != priority {
            self.stats.reprioritizations += 1;
        }
        f.priority = priority;
        if f.pin_count == 0 {
            self.enqueue(slot);
        }
        Ok(())
    }

    /// The page that would be evicted next, if any (for tests/inspection).
    pub fn next_victim(&self) -> Option<PageId> {
        self.victim_slot().map(|s| self.frames[s as usize].id)
    }

    /// Snapshot of every resident frame in page-id order — the raw
    /// material for a pool-residency heatmap.
    pub fn resident_pages(&self) -> Vec<ResidentPage> {
        let mut out: Vec<ResidentPage> = self
            .map
            .values()
            .map(|&slot| {
                let f = &self.frames[slot as usize];
                ResidentPage {
                    id: f.id,
                    priority: f.priority,
                    pinned: f.pin_count > 0,
                }
            })
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Drop one unpinned resident page (no-op if absent or pinned).
    /// Real engines use this to recycle the buffers of large sequential
    /// scans ("ring buffers"), preventing one scan from flushing the
    /// pool — the vanilla baseline behavior of the papers.
    pub fn discard(&mut self, id: PageId) {
        let Some(&slot) = self.map.get(&id) else {
            return;
        };
        if self.frames[slot as usize].pin_count > 0 {
            return;
        }
        self.dequeue(slot);
        self.frames[slot as usize].buf = PageBuf::new();
        self.map.remove(&id);
        self.free.push(slot);
    }

    /// Drop every unpinned frame (used between experiment phases so base
    /// and scan-sharing runs start cold).
    pub fn clear_unpinned(&mut self) {
        if self.cfg.policy == ReplacementPolicy::Lru2 {
            for (_, id) in std::mem::take(&mut self.lru2) {
                let slot = self.map.remove(&id).expect("candidate is resident");
                self.frames[slot as usize].buf = PageBuf::new();
                self.free.push(slot);
            }
            return;
        }
        for class in 0..CLASSES {
            let mut at = self.lists[class].head;
            while at != NIL {
                let f = &mut self.frames[at as usize];
                let next = f.next;
                f.prev = NIL;
                f.next = NIL;
                f.buf = PageBuf::new();
                self.map.remove(&f.id);
                self.free.push(at);
                at = next;
            }
            self.lists[class] = CandidateList::empty();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{zeroed_page, FileId};

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(0), p)
    }

    fn buf(tag: u8) -> PageBuf {
        let mut b = zeroed_page();
        b[0] = tag;
        b.freeze()
    }

    fn pool(capacity: usize, policy: ReplacementPolicy) -> BufferPool {
        BufferPool::new(PoolConfig::new(capacity, policy))
    }

    /// Fix+load+release helper simulating a full page visit.
    fn visit(p: &mut BufferPool, id: PageId, prio: PagePriority) {
        match p.fix(id) {
            FixOutcome::Hit(_) => {}
            FixOutcome::Miss => p.complete_miss(id, buf(id.page as u8)).unwrap(),
        }
        p.release(id, prio).unwrap();
    }

    #[test]
    fn hit_after_miss() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(7)).unwrap();
        p.release(pid(0), PagePriority::Normal).unwrap();
        match p.fix(pid(0)) {
            FixOutcome::Hit(b) => assert_eq!(b[0], 7),
            FixOutcome::Miss => panic!("expected hit"),
        }
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().logical_reads, 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut p = pool(3, ReplacementPolicy::Lru);
        for i in 0..10 {
            visit(&mut p, pid(i), PagePriority::Normal);
            assert!(p.len() <= 3);
        }
        assert_eq!(p.stats().evictions, 7);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // refresh 0
        visit(&mut p, pid(2), PagePriority::Normal); // evicts 1
        assert!(p.contains(pid(0)));
        assert!(!p.contains(pid(1)));
        assert!(p.contains(pid(2)));
    }

    #[test]
    fn lru_policy_ignores_priorities() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        visit(&mut p, pid(0), PagePriority::Low);
        visit(&mut p, pid(1), PagePriority::High);
        // Under pure LRU the victim is page 0 (older), despite page 1
        // being... wait, priorities ignored: oldest is 0.
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn priority_lru_evicts_low_priority_first() {
        let mut p = pool(3, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(0), PagePriority::High);
        visit(&mut p, pid(1), PagePriority::Low);
        visit(&mut p, pid(2), PagePriority::Normal);
        // Low beats recency: page 1 goes first even though 0 is older.
        assert_eq!(p.next_victim(), Some(pid(1)));
        visit(&mut p, pid(3), PagePriority::Normal);
        assert!(!p.contains(pid(1)));
        assert!(p.contains(pid(0)));
    }

    #[test]
    fn priority_lru_is_lru_within_class() {
        let mut p = pool(3, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // refresh 0
        assert_eq!(p.next_victim(), Some(pid(1)));
    }

    #[test]
    fn last_release_wins_the_priority() {
        let mut p = pool(2, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(0), PagePriority::High); // leader keeps it
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Low); // trailer lets it go
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn pinned_pages_are_not_victimized() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(0)).unwrap(); // stays pinned
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(2), PagePriority::Normal); // must evict 1, not 0
        assert!(p.contains(pid(0)));
        assert!(!p.contains(pid(1)));
        p.release(pid(0), PagePriority::Normal).unwrap();
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let mut p = pool(1, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(0)).unwrap();
        let err = p.complete_miss(pid(1), buf(1)).unwrap_err();
        assert!(matches!(err, StorageError::PoolExhausted { .. }));
    }

    #[test]
    fn double_pin_requires_double_release() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(0)).unwrap();
        assert!(matches!(p.fix(pid(0)), FixOutcome::Hit(_)));
        p.release(pid(0), PagePriority::Normal).unwrap();
        // Still pinned once: not a candidate.
        assert_eq!(p.next_victim(), None);
        p.release(pid(0), PagePriority::Normal).unwrap();
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn release_of_unfixed_page_errors() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(
            p.release(pid(0), PagePriority::Normal).unwrap_err(),
            StorageError::NotResident(_)
        ));
        visit(&mut p, pid(0), PagePriority::Normal);
        assert!(matches!(
            p.release(pid(0), PagePriority::Normal).unwrap_err(),
            StorageError::PinViolation(_)
        ));
    }

    #[test]
    fn concurrent_miss_completion_just_pins() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(1)).unwrap();
        p.complete_miss(pid(0), buf(2)).unwrap(); // second loader
        assert_eq!(p.len(), 1);
        p.release(pid(0), PagePriority::Normal).unwrap();
        assert_eq!(p.next_victim(), None); // still pinned once
        p.release(pid(0), PagePriority::Normal).unwrap();
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn clear_unpinned_keeps_pinned_pages() {
        let mut p = pool(3, ReplacementPolicy::Lru);
        visit(&mut p, pid(0), PagePriority::Normal);
        assert!(matches!(p.fix(pid(1)), FixOutcome::Miss));
        p.complete_miss(pid(1), buf(1)).unwrap();
        p.clear_unpinned();
        assert!(!p.contains(pid(0)));
        assert!(p.contains(pid(1)));
    }

    #[test]
    fn lru2_evicts_once_referenced_pages_first() {
        let mut p = pool(3, ReplacementPolicy::Lru2);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // page 0 re-referenced
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(2), PagePriority::Normal);
        // Pages 1 and 2 were touched once; page 1 (older single touch)
        // goes first even though page 0's first access is the oldest.
        assert_eq!(p.next_victim(), Some(pid(1)));
        visit(&mut p, pid(3), PagePriority::Normal);
        assert!(p.contains(pid(0)));
        assert!(!p.contains(pid(1)));
    }

    #[test]
    fn lru2_orders_by_second_recency() {
        let mut p = pool(2, ReplacementPolicy::Lru2);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // 0: prev=1st access
        visit(&mut p, pid(1), PagePriority::Normal); // 1: prev is later
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn lru2_ignores_priorities() {
        let mut p = pool(2, ReplacementPolicy::Lru2);
        visit(&mut p, pid(0), PagePriority::High);
        visit(&mut p, pid(1), PagePriority::Low);
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn resident_pages_snapshot_reports_priority_and_pins() {
        let mut p = pool(3, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(2), PagePriority::High);
        visit(&mut p, pid(0), PagePriority::Low);
        assert!(matches!(p.fix(pid(1)), FixOutcome::Miss));
        p.complete_miss(pid(1), buf(1)).unwrap(); // left pinned
        let resident = p.resident_pages();
        assert_eq!(
            resident,
            vec![
                ResidentPage {
                    id: pid(0),
                    priority: PagePriority::Low,
                    pinned: false
                },
                ResidentPage {
                    id: pid(1),
                    priority: PagePriority::Normal,
                    pinned: true
                },
                ResidentPage {
                    id: pid(2),
                    priority: PagePriority::High,
                    pinned: false
                },
            ]
        );
        p.release(pid(1), PagePriority::Normal).unwrap();
    }

    #[test]
    fn reprioritizations_count_only_changes() {
        let mut p = pool(2, ReplacementPolicy::PriorityLru);
        // First visit installs at Normal and releases at Normal: no change.
        visit(&mut p, pid(0), PagePriority::Normal);
        assert_eq!(p.stats().reprioritizations, 0);
        // Leader bumps it High, trailer drops it Low, a re-release at the
        // same priority is not a change.
        visit(&mut p, pid(0), PagePriority::High);
        visit(&mut p, pid(0), PagePriority::Low);
        visit(&mut p, pid(0), PagePriority::Low);
        assert_eq!(p.stats().reprioritizations, 2);
        // Old artifacts without the field deserialize to zero.
        let legacy = r#"{"logical_reads":4,"hits":3,"misses":1,"evictions":0}"#;
        let stats: PoolStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(stats.reprioritizations, 0);
    }

    #[test]
    fn hit_ratio_reporting() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert_eq!(p.stats().hit_ratio(), 0.0);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal);
        assert!((p.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn slot_api_matches_fix_and_borrows_without_cloning() {
        let mut p = pool(2, ReplacementPolicy::PriorityLru);
        assert_eq!(p.fix_slot(pid(0)), None);
        let slot = p.complete_miss_slot(pid(0), buf(9)).unwrap();
        assert_eq!(p.slot_page(slot), pid(0));
        assert_eq!(p.slot_buf(slot)[0], 9);
        p.release(pid(0), PagePriority::Normal).unwrap();
        // Hit path: same slot comes back, no clone needed to read.
        assert_eq!(p.fix_slot(pid(0)), Some(slot));
        assert_eq!(p.slot_buf(slot)[0], 9);
        p.release(pid(0), PagePriority::High).unwrap();
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn slots_are_stable_while_pinned_and_recycled_after_eviction() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        let s0 = p.complete_miss_slot(pid(0), buf(0)).unwrap();
        let s1 = p.complete_miss_slot(pid(1), buf(1)).unwrap();
        assert_ne!(s0, s1);
        // Page 0 stays pinned across an eviction cycle of page 1.
        p.release(pid(1), PagePriority::Normal).unwrap();
        let s2 = p.complete_miss_slot(pid(2), buf(2)).unwrap();
        assert_eq!(s2, s1, "evicted frame's slot is recycled");
        assert_eq!(p.slot_page(s0), pid(0));
        assert_eq!(p.slot_buf(s0)[0], 0);
        p.release(pid(0), PagePriority::Normal).unwrap();
        p.release(pid(2), PagePriority::Normal).unwrap();
    }

    #[test]
    fn out_of_order_releases_keep_lru_order_by_use() {
        // Fix three pages (recency 0 < 1 < 2), then release newest-first:
        // the victim order must still follow use recency, not release
        // order — the invariant the positioned list insertion maintains.
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::PriorityLru] {
            let mut p = pool(4, policy);
            for i in 0..3 {
                assert!(matches!(p.fix(pid(i)), FixOutcome::Miss));
                p.complete_miss(pid(i), buf(i as u8)).unwrap();
            }
            for i in (0..3).rev() {
                p.release(pid(i), PagePriority::Normal).unwrap();
            }
            assert_eq!(p.next_victim(), Some(pid(0)));
            visit(&mut p, pid(3), PagePriority::Normal);
            visit(&mut p, pid(4), PagePriority::Normal); // evict 0
            assert!(!p.contains(pid(0)));
            assert_eq!(p.next_victim(), Some(pid(1)));
        }
    }
}
