//! Buffer pool with priority-aware replacement.
//!
//! The papers treat the caching subsystem as a black box with one extra
//! knob: every scan *releases* each processed page with a **priority**
//! ("release page(l) with priority p"), and the replacement policy prefers
//! to victimize low-priority pages first. The scan-sharing manager turns
//! that knob: group **leaders** release pages with high priority (the rest
//! of the group still needs them), **trailers** release with low priority
//! (nobody is following, the page can go).
//!
//! Two policies are provided:
//!
//! * [`ReplacementPolicy::Lru`] — the baseline: priorities are ignored and
//!   the least-recently-used unpinned page is evicted,
//! * [`ReplacementPolicy::PriorityLru`] — the prototype: the victim is the
//!   unpinned page with the lowest priority, LRU within a priority class.
//!
//! The pool does not perform I/O itself. `fix` either returns the resident
//! page or reports a miss; the caller loads the bytes (paying the disk
//! model's cost) and hands them back via `complete_miss`. This mirrors the
//! paper's architecture where the sharing manager never talks to the disk.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::error::{StorageError, StorageResult};
use crate::page::{PageBuf, PageId};

/// Priority assigned to a page when it is released.
///
/// Ordering matters: lower values are victimized first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PagePriority {
    /// Evict first: no ongoing scan will need this page soon (trailers).
    Low = 0,
    /// Default priority.
    Normal = 1,
    /// Keep if possible: following scans need this page soon (leaders).
    High = 2,
}

/// Which replacement policy the pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Classic LRU; release priorities are accepted but ignored.
    Lru,
    /// Priority-first, LRU within a priority class.
    PriorityLru,
    /// LRU-2 (LRU-K with K = 2, O'Neil et al.): victimize the page whose
    /// *second-to-last* access is oldest; pages referenced only once are
    /// evicted before any re-referenced page. A general-purpose
    /// improvement from the paper's related work — included to show that
    /// smarter generic replacement does not rescue concurrent scans the
    /// way coordinated sharing does.
    Lru2,
}

/// Pool construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Number of page frames.
    pub capacity: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl PoolConfig {
    /// Convenience constructor.
    pub fn new(capacity: usize, policy: ReplacementPolicy) -> Self {
        PoolConfig { capacity, policy }
    }
}

/// Counters maintained by the pool.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Total `fix` calls.
    pub logical_reads: u64,
    /// `fix` calls satisfied from a resident frame.
    pub hits: u64,
    /// `fix` calls that required a physical read.
    pub misses: u64,
    /// Frames victimized to make room.
    pub evictions: u64,
    /// Releases whose priority hint *changed* the frame's priority — the
    /// release-path re-prioritizations of §7.3 (leader marks pages High,
    /// trailer marks them Low). Absent in older artifacts.
    #[serde(default)]
    pub reprioritizations: u64,
}

impl PoolStats {
    /// Hit ratio in [0, 1]; zero when no reads occurred.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }
}

/// One resident frame, as reported by [`BufferPool::resident_pages`] —
/// what a live dashboard needs to draw a residency heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidentPage {
    /// The resident page.
    pub id: PageId,
    /// Its current release priority.
    pub priority: PagePriority,
    /// Whether it is pinned right now.
    pub pinned: bool,
}

/// Result of a `fix` call.
#[derive(Debug, Clone)]
pub enum FixOutcome {
    /// The page is resident; it is now pinned and its bytes are returned.
    Hit(PageBuf),
    /// The page is not resident. The caller must load it and call
    /// `complete_miss`. No frame is reserved yet.
    Miss,
}

#[derive(Debug)]
struct Frame {
    buf: PageBuf,
    pin_count: u32,
    priority: PagePriority,
    last_use: u64,
    /// Second-to-last access (0 until the page is re-referenced).
    prev_use: u64,
}

/// The buffer pool.
///
/// ```
/// use scanshare_storage::{BufferPool, PoolConfig, ReplacementPolicy,
///                         PagePriority, FixOutcome, PageId, FileId,
///                         page::zeroed_page};
///
/// let mut pool = BufferPool::new(PoolConfig::new(2, ReplacementPolicy::PriorityLru));
/// let page = PageId::new(FileId(0), 7);
/// // Miss: the caller loads the bytes and completes the fix.
/// assert!(matches!(pool.fix(page), FixOutcome::Miss));
/// pool.complete_miss(page, zeroed_page().freeze()).unwrap();
/// // Release with the paper's priority hint.
/// pool.release(page, PagePriority::High).unwrap();
/// assert!(matches!(pool.fix(page), FixOutcome::Hit(_)));
/// pool.release(page, PagePriority::High).unwrap();
/// assert_eq!(pool.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct BufferPool {
    cfg: PoolConfig,
    frames: HashMap<PageId, Frame>,
    /// Unpinned frames ordered by (effective priority, last use, id); the
    /// first element is the next victim. Pinned frames are absent.
    candidates: BTreeSet<(u8, u64, PageId)>,
    use_seq: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Create a pool.
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.capacity > 0, "pool capacity must be positive");
        BufferPool {
            frames: HashMap::with_capacity(cfg.capacity),
            candidates: BTreeSet::new(),
            use_seq: 0,
            stats: PoolStats::default(),
            cfg,
        }
    }

    /// Number of frames configured.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.cfg.policy
    }

    /// Whether `id` is resident (without touching its recency).
    pub fn contains(&self, id: PageId) -> bool {
        self.frames.contains_key(&id)
    }

    /// Counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Eviction-order key of an unpinned frame: the candidate set is
    /// ordered ascending, so the first key is the next victim.
    fn candidate_key(&self, frame: &Frame, id: PageId) -> (u8, u64, PageId) {
        match self.cfg.policy {
            ReplacementPolicy::Lru => (PagePriority::Normal as u8, frame.last_use, id),
            ReplacementPolicy::PriorityLru => (frame.priority as u8, frame.last_use, id),
            ReplacementPolicy::Lru2 => (PagePriority::Normal as u8, frame.prev_use, id),
        }
    }

    /// Try to pin `id`. On a hit the frame's recency is refreshed and the
    /// bytes are returned; on a miss the caller is expected to load the
    /// page and call [`BufferPool::complete_miss`].
    pub fn fix(&mut self, id: PageId) -> FixOutcome {
        self.stats.logical_reads += 1;
        self.use_seq += 1;
        let seq = self.use_seq;
        if let Some(frame) = self.frames.get(&id) {
            self.stats.hits += 1;
            if frame.pin_count == 0 {
                let key = self.candidate_key(frame, id);
                self.candidates.remove(&key);
            }
            let frame = self.frames.get_mut(&id).expect("present");
            frame.pin_count += 1;
            frame.prev_use = frame.last_use;
            frame.last_use = seq;
            FixOutcome::Hit(frame.buf.clone())
        } else {
            self.stats.misses += 1;
            FixOutcome::Miss
        }
    }

    /// Install a page after a miss, evicting if necessary. The page is
    /// pinned for the caller. Fails with [`StorageError::PoolExhausted`]
    /// if every frame is pinned.
    pub fn complete_miss(&mut self, id: PageId, buf: PageBuf) -> StorageResult<()> {
        if let Some(frame) = self.frames.get(&id) {
            // Someone else installed it while we were loading; just pin.
            if frame.pin_count == 0 {
                let key = self.candidate_key(frame, id);
                self.candidates.remove(&key);
            }
            self.use_seq += 1;
            let seq = self.use_seq;
            let frame = self.frames.get_mut(&id).expect("present");
            frame.pin_count += 1;
            frame.prev_use = frame.last_use;
            frame.last_use = seq;
            return Ok(());
        }
        if self.frames.len() >= self.cfg.capacity {
            let victim =
                self.candidates
                    .iter()
                    .next()
                    .copied()
                    .ok_or(StorageError::PoolExhausted {
                        capacity: self.cfg.capacity,
                    })?;
            self.candidates.remove(&victim);
            self.frames.remove(&victim.2);
            self.stats.evictions += 1;
        }
        self.use_seq += 1;
        self.frames.insert(
            id,
            Frame {
                buf,
                pin_count: 1,
                priority: PagePriority::Normal,
                last_use: self.use_seq,
                prev_use: 0,
            },
        );
        Ok(())
    }

    /// Unpin a page, attaching the release priority hint — the paper's
    /// "release page with priority p". The hint overwrites any previous
    /// priority: the *last* scan over a page decides its fate, which is
    /// exactly the leader/trailer semantics of §7.3.
    pub fn release(&mut self, id: PageId, priority: PagePriority) -> StorageResult<()> {
        {
            let frame = self
                .frames
                .get_mut(&id)
                .ok_or(StorageError::NotResident(id))?;
            if frame.pin_count == 0 {
                return Err(StorageError::PinViolation(id));
            }
            frame.pin_count -= 1;
            if frame.priority != priority {
                self.stats.reprioritizations += 1;
            }
            frame.priority = priority;
        }
        let frame = &self.frames[&id];
        if frame.pin_count == 0 {
            let key = self.candidate_key(frame, id);
            self.candidates.insert(key);
        }
        Ok(())
    }

    /// The page that would be evicted next, if any (for tests/inspection).
    pub fn next_victim(&self) -> Option<PageId> {
        self.candidates.iter().next().map(|&(_, _, id)| id)
    }

    /// Snapshot of every resident frame in page-id order — the raw
    /// material for a pool-residency heatmap.
    pub fn resident_pages(&self) -> Vec<ResidentPage> {
        let mut out: Vec<ResidentPage> = self
            .frames
            .iter()
            .map(|(&id, f)| ResidentPage {
                id,
                priority: f.priority,
                pinned: f.pin_count > 0,
            })
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Drop one unpinned resident page (no-op if absent or pinned).
    /// Real engines use this to recycle the buffers of large sequential
    /// scans ("ring buffers"), preventing one scan from flushing the
    /// pool — the vanilla baseline behavior of the papers.
    pub fn discard(&mut self, id: PageId) {
        let Some(frame) = self.frames.get(&id) else {
            return;
        };
        if frame.pin_count > 0 {
            return;
        }
        let key = self.candidate_key(frame, id);
        self.candidates.remove(&key);
        self.frames.remove(&id);
    }

    /// Drop every unpinned frame (used between experiment phases so base
    /// and scan-sharing runs start cold).
    pub fn clear_unpinned(&mut self) {
        for (_, _, id) in std::mem::take(&mut self.candidates) {
            self.frames.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{zeroed_page, FileId};

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(0), p)
    }

    fn buf(tag: u8) -> PageBuf {
        let mut b = zeroed_page();
        b[0] = tag;
        b.freeze()
    }

    fn pool(capacity: usize, policy: ReplacementPolicy) -> BufferPool {
        BufferPool::new(PoolConfig::new(capacity, policy))
    }

    /// Fix+load+release helper simulating a full page visit.
    fn visit(p: &mut BufferPool, id: PageId, prio: PagePriority) {
        match p.fix(id) {
            FixOutcome::Hit(_) => {}
            FixOutcome::Miss => p.complete_miss(id, buf(id.page as u8)).unwrap(),
        }
        p.release(id, prio).unwrap();
    }

    #[test]
    fn hit_after_miss() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(7)).unwrap();
        p.release(pid(0), PagePriority::Normal).unwrap();
        match p.fix(pid(0)) {
            FixOutcome::Hit(b) => assert_eq!(b[0], 7),
            FixOutcome::Miss => panic!("expected hit"),
        }
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().logical_reads, 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut p = pool(3, ReplacementPolicy::Lru);
        for i in 0..10 {
            visit(&mut p, pid(i), PagePriority::Normal);
            assert!(p.len() <= 3);
        }
        assert_eq!(p.stats().evictions, 7);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // refresh 0
        visit(&mut p, pid(2), PagePriority::Normal); // evicts 1
        assert!(p.contains(pid(0)));
        assert!(!p.contains(pid(1)));
        assert!(p.contains(pid(2)));
    }

    #[test]
    fn lru_policy_ignores_priorities() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        visit(&mut p, pid(0), PagePriority::Low);
        visit(&mut p, pid(1), PagePriority::High);
        // Under pure LRU the victim is page 0 (older), despite page 1
        // being... wait, priorities ignored: oldest is 0.
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn priority_lru_evicts_low_priority_first() {
        let mut p = pool(3, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(0), PagePriority::High);
        visit(&mut p, pid(1), PagePriority::Low);
        visit(&mut p, pid(2), PagePriority::Normal);
        // Low beats recency: page 1 goes first even though 0 is older.
        assert_eq!(p.next_victim(), Some(pid(1)));
        visit(&mut p, pid(3), PagePriority::Normal);
        assert!(!p.contains(pid(1)));
        assert!(p.contains(pid(0)));
    }

    #[test]
    fn priority_lru_is_lru_within_class() {
        let mut p = pool(3, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // refresh 0
        assert_eq!(p.next_victim(), Some(pid(1)));
    }

    #[test]
    fn last_release_wins_the_priority() {
        let mut p = pool(2, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(0), PagePriority::High); // leader keeps it
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Low); // trailer lets it go
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn pinned_pages_are_not_victimized() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(0)).unwrap(); // stays pinned
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(2), PagePriority::Normal); // must evict 1, not 0
        assert!(p.contains(pid(0)));
        assert!(!p.contains(pid(1)));
        p.release(pid(0), PagePriority::Normal).unwrap();
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let mut p = pool(1, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(0)).unwrap();
        let err = p.complete_miss(pid(1), buf(1)).unwrap_err();
        assert!(matches!(err, StorageError::PoolExhausted { .. }));
    }

    #[test]
    fn double_pin_requires_double_release() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(0)).unwrap();
        assert!(matches!(p.fix(pid(0)), FixOutcome::Hit(_)));
        p.release(pid(0), PagePriority::Normal).unwrap();
        // Still pinned once: not a candidate.
        assert_eq!(p.next_victim(), None);
        p.release(pid(0), PagePriority::Normal).unwrap();
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn release_of_unfixed_page_errors() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(
            p.release(pid(0), PagePriority::Normal).unwrap_err(),
            StorageError::NotResident(_)
        ));
        visit(&mut p, pid(0), PagePriority::Normal);
        assert!(matches!(
            p.release(pid(0), PagePriority::Normal).unwrap_err(),
            StorageError::PinViolation(_)
        ));
    }

    #[test]
    fn concurrent_miss_completion_just_pins() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        assert!(matches!(p.fix(pid(0)), FixOutcome::Miss));
        p.complete_miss(pid(0), buf(1)).unwrap();
        p.complete_miss(pid(0), buf(2)).unwrap(); // second loader
        assert_eq!(p.len(), 1);
        p.release(pid(0), PagePriority::Normal).unwrap();
        assert_eq!(p.next_victim(), None); // still pinned once
        p.release(pid(0), PagePriority::Normal).unwrap();
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn clear_unpinned_keeps_pinned_pages() {
        let mut p = pool(3, ReplacementPolicy::Lru);
        visit(&mut p, pid(0), PagePriority::Normal);
        assert!(matches!(p.fix(pid(1)), FixOutcome::Miss));
        p.complete_miss(pid(1), buf(1)).unwrap();
        p.clear_unpinned();
        assert!(!p.contains(pid(0)));
        assert!(p.contains(pid(1)));
    }

    #[test]
    fn lru2_evicts_once_referenced_pages_first() {
        let mut p = pool(3, ReplacementPolicy::Lru2);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // page 0 re-referenced
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(2), PagePriority::Normal);
        // Pages 1 and 2 were touched once; page 1 (older single touch)
        // goes first even though page 0's first access is the oldest.
        assert_eq!(p.next_victim(), Some(pid(1)));
        visit(&mut p, pid(3), PagePriority::Normal);
        assert!(p.contains(pid(0)));
        assert!(!p.contains(pid(1)));
    }

    #[test]
    fn lru2_orders_by_second_recency() {
        let mut p = pool(2, ReplacementPolicy::Lru2);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(1), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal); // 0: prev=1st access
        visit(&mut p, pid(1), PagePriority::Normal); // 1: prev is later
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn lru2_ignores_priorities() {
        let mut p = pool(2, ReplacementPolicy::Lru2);
        visit(&mut p, pid(0), PagePriority::High);
        visit(&mut p, pid(1), PagePriority::Low);
        assert_eq!(p.next_victim(), Some(pid(0)));
    }

    #[test]
    fn resident_pages_snapshot_reports_priority_and_pins() {
        let mut p = pool(3, ReplacementPolicy::PriorityLru);
        visit(&mut p, pid(2), PagePriority::High);
        visit(&mut p, pid(0), PagePriority::Low);
        assert!(matches!(p.fix(pid(1)), FixOutcome::Miss));
        p.complete_miss(pid(1), buf(1)).unwrap(); // left pinned
        let resident = p.resident_pages();
        assert_eq!(
            resident,
            vec![
                ResidentPage {
                    id: pid(0),
                    priority: PagePriority::Low,
                    pinned: false
                },
                ResidentPage {
                    id: pid(1),
                    priority: PagePriority::Normal,
                    pinned: true
                },
                ResidentPage {
                    id: pid(2),
                    priority: PagePriority::High,
                    pinned: false
                },
            ]
        );
        p.release(pid(1), PagePriority::Normal).unwrap();
    }

    #[test]
    fn reprioritizations_count_only_changes() {
        let mut p = pool(2, ReplacementPolicy::PriorityLru);
        // First visit installs at Normal and releases at Normal: no change.
        visit(&mut p, pid(0), PagePriority::Normal);
        assert_eq!(p.stats().reprioritizations, 0);
        // Leader bumps it High, trailer drops it Low, a re-release at the
        // same priority is not a change.
        visit(&mut p, pid(0), PagePriority::High);
        visit(&mut p, pid(0), PagePriority::Low);
        visit(&mut p, pid(0), PagePriority::Low);
        assert_eq!(p.stats().reprioritizations, 2);
        // Old artifacts without the field deserialize to zero.
        let legacy = r#"{"logical_reads":4,"hits":3,"misses":1,"evictions":0}"#;
        let stats: PoolStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(stats.reprioritizations, 0);
    }

    #[test]
    fn hit_ratio_reporting() {
        let mut p = pool(2, ReplacementPolicy::Lru);
        assert_eq!(p.stats().hit_ratio(), 0.0);
        visit(&mut p, pid(0), PagePriority::Normal);
        visit(&mut p, pid(0), PagePriority::Normal);
        assert!((p.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }
}
