//! Deterministic fault injection for the disk model.
//!
//! A [`FaultPlan`] is a declarative, seeded description of adverse disk
//! behavior: transient and permanent read errors, latency spikes, and
//! stalled requests, each scoped to a device, a physical page range, and
//! a virtual-time window. The plan is pure data (serde-friendly, embedded
//! in workload specs); the [`FaultInjector`] is its runtime companion
//! that the disk array consults once per read request.
//!
//! Determinism is the whole point: every probabilistic draw is a pure
//! hash of `(seed, device, address, attempt)`, never of wall time or
//! thread schedule. The same plan against the same workload injects the
//! same faults at the same virtual instants on every run and for every
//! `--jobs` setting — which is what lets the engine's retry handling be
//! property-tested for bit-identical reports. The per-address attempt
//! counter makes retries meaningful: a transient fault re-rolls on each
//! attempt instead of failing the same address forever.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::sim::{SimDuration, SimTime};

/// What a matching rule does to a read request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The read fails with `probability`; a retry re-rolls and may
    /// succeed.
    TransientError {
        /// Per-request failure probability in `[0, 1]`.
        probability: f64,
    },
    /// Every matching read fails, retries included — a dead region or
    /// device.
    PermanentError,
    /// The request's service time is inflated by `extra_us` with
    /// `probability` — a slow-path sector remap, a recovered error.
    LatencySpike {
        /// Per-request spike probability in `[0, 1]`.
        probability: f64,
        /// Extra service time per spiked request, in microseconds.
        extra_us: u64,
    },
    /// The device stalls for `for_us` before servicing the request (and
    /// everything queued behind it) with `probability` — firmware
    /// hiccups, internal retries on the device itself.
    Stall {
        /// Per-request stall probability in `[0, 1]`.
        probability: f64,
        /// Stall length in microseconds.
        for_us: u64,
    },
}

/// One fault rule: *where* (device and physical page range), *when*
/// (virtual-time window), and *what* ([`FaultKind`]). The first rule
/// matching a request decides its fate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Device index this rule targets (`None`: every device).
    #[serde(default)]
    pub device: Option<u32>,
    /// Physical page range `[start, end)` (`None`: every address).
    #[serde(default)]
    pub pages: Option<(u64, u64)>,
    /// Virtual time (µs) at which the rule becomes active.
    #[serde(default)]
    pub from_us: u64,
    /// Virtual time (µs) at which it stops matching (`None`: never).
    #[serde(default)]
    pub until_us: Option<u64>,
    /// The injected behavior, externally tagged:
    /// `"fault": {"TransientError": {"probability": 0.01}}`.
    pub fault: FaultKind,
}

impl FaultRule {
    fn matches(&self, now: SimTime, device: u32, addr: u64) -> bool {
        if let Some(d) = self.device {
            if d != device {
                return false;
            }
        }
        if let Some((lo, hi)) = self.pages {
            if addr < lo || addr >= hi {
                return false;
            }
        }
        let t = now.as_micros();
        t >= self.from_us && self.until_us.is_none_or(|u| t < u)
    }
}

/// A seeded, declarative fault schedule. Empty plans (no rules) are the
/// default and inject nothing — a run with an empty plan is bit-identical
/// to a run with no plan at all.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-request probability draws.
    #[serde(default)]
    pub seed: u64,
    /// The rules, consulted in order; the first match wins.
    #[serde(default)]
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Injection counters, split by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient read errors injected.
    pub transient_errors: u64,
    /// Permanent read errors injected.
    pub permanent_errors: u64,
    /// Latency spikes and stalls injected.
    pub delays: u64,
    /// Total extra service time injected by spikes and stalls.
    pub delay_total: SimDuration,
}

/// What the injector decided for one read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// No fault: service the request normally.
    None,
    /// The read fails. `transient` distinguishes retryable errors from
    /// dead regions.
    Error {
        /// Whether a retry may succeed.
        transient: bool,
    },
    /// Service the request, but inflate its service time by this much.
    Delay(SimDuration),
}

/// Runtime state of a [`FaultPlan`]: the per-address attempt counters and
/// the injection counters. One injector per run; the disk array consults
/// it once per physical read request.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Attempts seen per `(device, addr)` — the re-roll counter that
    /// makes transient faults survivable by retry.
    attempts: HashMap<(u32, u64), u64>,
    stats: FaultStats,
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of the draw key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Create the runtime state for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            attempts: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// Whether the underlying plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Injection counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Deterministic uniform draw in `[0, 1)` for one request attempt.
    fn roll(&self, device: u32, addr: u64, attempt: u64) -> f64 {
        let h = mix(self
            .plan
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(mix((device as u64) << 48 ^ addr))
            .wrapping_add(mix(attempt ^ 0x5851_F42D_4C95_7F2D)));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of a read request at `now` for `addr` on `device`.
    /// Each call advances the address's attempt counter, so a retried
    /// request re-rolls its probabilistic rules.
    pub fn check(&mut self, now: SimTime, device: u32, addr: u64) -> FaultOutcome {
        if self.plan.rules.is_empty() {
            return FaultOutcome::None;
        }
        let attempt = {
            let n = self.attempts.entry((device, addr)).or_insert(0);
            *n += 1;
            *n
        };
        let rule = self
            .plan
            .rules
            .iter()
            .find(|r| r.matches(now, device, addr));
        let Some(rule) = rule else {
            return FaultOutcome::None;
        };
        match rule.fault {
            FaultKind::PermanentError => {
                self.stats.permanent_errors += 1;
                FaultOutcome::Error { transient: false }
            }
            FaultKind::TransientError { probability } => {
                if self.roll(device, addr, attempt) < probability {
                    self.stats.transient_errors += 1;
                    FaultOutcome::Error { transient: true }
                } else {
                    FaultOutcome::None
                }
            }
            FaultKind::LatencySpike {
                probability,
                extra_us,
            } => {
                if self.roll(device, addr, attempt) < probability {
                    let d = SimDuration::from_micros(extra_us);
                    self.stats.delays += 1;
                    self.stats.delay_total += d;
                    FaultOutcome::Delay(d)
                } else {
                    FaultOutcome::None
                }
            }
            FaultKind::Stall {
                probability,
                for_us,
            } => {
                if self.roll(device, addr, attempt) < probability {
                    let d = SimDuration::from_micros(for_us);
                    self.stats.delays += 1;
                    self.stats.delay_total += d;
                    FaultOutcome::Delay(d)
                } else {
                    FaultOutcome::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(fault: FaultKind) -> FaultRule {
        FaultRule {
            device: None,
            pages: None,
            from_us: 0,
            until_us: None,
            fault,
        }
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        assert!(inj.is_empty());
        for a in 0..1000 {
            assert_eq!(inj.check(SimTime::ZERO, 0, a), FaultOutcome::None);
        }
        assert_eq!(inj.stats(), &FaultStats::default());
    }

    #[test]
    fn permanent_errors_persist_across_attempts() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![rule(FaultKind::PermanentError)],
        };
        let mut inj = FaultInjector::new(plan);
        for _ in 0..5 {
            assert_eq!(
                inj.check(SimTime::ZERO, 0, 7),
                FaultOutcome::Error { transient: false }
            );
        }
        assert_eq!(inj.stats().permanent_errors, 5);
    }

    #[test]
    fn transient_errors_rerolled_per_attempt() {
        let plan = FaultPlan {
            seed: 42,
            rules: vec![rule(FaultKind::TransientError { probability: 0.5 })],
        };
        let mut inj = FaultInjector::new(plan);
        // With p=0.5, ten attempts at one address almost surely see both
        // outcomes — the attempt counter changes the draw.
        let outcomes: Vec<bool> = (0..10)
            .map(|_| inj.check(SimTime::ZERO, 0, 3) != FaultOutcome::None)
            .collect();
        assert!(outcomes.iter().any(|&b| b), "no fault in 10 p=0.5 draws");
        assert!(outcomes.iter().any(|&b| !b), "no success in 10 draws");
    }

    #[test]
    fn draws_are_deterministic_for_a_seed() {
        let plan = FaultPlan {
            seed: 7,
            rules: vec![rule(FaultKind::TransientError { probability: 0.3 })],
        };
        let run = || {
            let mut inj = FaultInjector::new(plan.clone());
            (0..200)
                .map(|a| inj.check(SimTime::ZERO, 0, a % 40))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // A different seed produces a different schedule.
        let other = FaultPlan {
            seed: 8,
            ..plan.clone()
        };
        let mut inj = FaultInjector::new(other);
        let alt: Vec<_> = (0..200)
            .map(|a| inj.check(SimTime::ZERO, 0, a % 40))
            .collect();
        assert_ne!(run(), alt);
    }

    #[test]
    fn rules_scope_by_device_range_and_window() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                device: Some(1),
                pages: Some((100, 200)),
                from_us: 1_000,
                until_us: Some(2_000),
                fault: FaultKind::PermanentError,
            }],
        };
        let mut inj = FaultInjector::new(plan);
        let hit = SimTime::from_micros(1_500);
        assert_eq!(inj.check(hit, 0, 150), FaultOutcome::None, "wrong device");
        assert_eq!(inj.check(hit, 1, 99), FaultOutcome::None, "below range");
        assert_eq!(inj.check(hit, 1, 200), FaultOutcome::None, "past range");
        assert_eq!(
            inj.check(SimTime::from_micros(999), 1, 150),
            FaultOutcome::None,
            "before window"
        );
        assert_eq!(
            inj.check(SimTime::from_micros(2_000), 1, 150),
            FaultOutcome::None,
            "after window"
        );
        assert_eq!(
            inj.check(hit, 1, 150),
            FaultOutcome::Error { transient: false }
        );
    }

    #[test]
    fn delays_accumulate_in_stats() {
        let plan = FaultPlan {
            seed: 3,
            rules: vec![rule(FaultKind::Stall {
                probability: 1.0,
                for_us: 2_500,
            })],
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.check(SimTime::ZERO, 0, 0),
            FaultOutcome::Delay(SimDuration::from_micros(2_500))
        );
        inj.check(SimTime::ZERO, 0, 1);
        assert_eq!(inj.stats().delays, 2);
        assert_eq!(inj.stats().delay_total, SimDuration::from_micros(5_000));
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![
                FaultRule {
                    pages: Some((0, 10)),
                    ..rule(FaultKind::PermanentError)
                },
                rule(FaultKind::Stall {
                    probability: 1.0,
                    for_us: 100,
                }),
            ],
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.check(SimTime::ZERO, 0, 5),
            FaultOutcome::Error { transient: false }
        );
        assert_eq!(
            inj.check(SimTime::ZERO, 0, 50),
            FaultOutcome::Delay(SimDuration::from_micros(100))
        );
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            seed: 9,
            rules: vec![
                rule(FaultKind::TransientError { probability: 0.01 }),
                FaultRule {
                    device: Some(0),
                    pages: Some((64, 128)),
                    from_us: 5,
                    until_us: Some(50),
                    fault: FaultKind::LatencySpike {
                        probability: 0.2,
                        extra_us: 10_000,
                    },
                },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // A bare `{}` is the empty plan.
        let empty: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
    }
}
