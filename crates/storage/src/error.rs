//! Error type shared across the storage layer.

use std::fmt;

use crate::page::{FileId, PageId};

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page was requested from a file that does not exist.
    UnknownFile(FileId),
    /// A page number past the end of the file was requested.
    PageOutOfBounds { id: PageId, file_pages: u32 },
    /// The buffer pool was asked to release or complete a page it does not
    /// hold.
    NotResident(PageId),
    /// A fix was requested while every frame in the pool is pinned.
    PoolExhausted { capacity: usize },
    /// A page was fixed twice without an intervening release, or released
    /// while not fixed.
    PinViolation(PageId),
    /// A record or structure did not fit in a page.
    PageOverflow { needed: usize, available: usize },
    /// Data on a page failed validation while decoding.
    Corrupt(String),
    /// A physical read failed, injected by a fault plan. `transient`
    /// distinguishes retryable errors from dead devices/regions.
    ReadFault {
        device: u32,
        addr: u64,
        transient: bool,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownFile(id) => write!(f, "unknown file {}", id.0),
            StorageError::PageOutOfBounds { id, file_pages } => {
                write!(f, "page {id} out of bounds (file has {file_pages} pages)")
            }
            StorageError::NotResident(id) => write!(f, "page {id} is not resident in the pool"),
            StorageError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            StorageError::PinViolation(id) => write!(f, "pin/unpin violation on page {id}"),
            StorageError::PageOverflow { needed, available } => {
                write!(
                    f,
                    "page overflow: needed {needed} bytes, {available} available"
                )
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::ReadFault {
                device,
                addr,
                transient,
            } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "{kind} read fault on device {device} at page {addr}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readably() {
        let e = StorageError::PageOutOfBounds {
            id: PageId::new(FileId(1), 7),
            file_pages: 4,
        };
        assert_eq!(e.to_string(), "page 1:7 out of bounds (file has 4 pages)");
        let e = StorageError::PoolExhausted { capacity: 8 };
        assert!(e.to_string().contains("all 8 frames pinned"));
        let e = StorageError::ReadFault {
            device: 2,
            addr: 640,
            transient: true,
        };
        assert_eq!(
            e.to_string(),
            "transient read fault on device 2 at page 640"
        );
    }
}
