//! Bucketed time series.
//!
//! Figures 17 and 18 of the paper plot the amount of data read from disk
//! and the number of seeks per fixed unit of time. [`TimeSeries`] is the
//! accumulator behind those plots: events are binned into fixed-width
//! buckets of simulated time.

use serde::{Deserialize, Serialize};

use crate::sim::SimTime;

/// A monotonically growing, bucketed counter over simulated time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket_us: u64,
    buckets: Vec<u64>,
}

impl Default for TimeSeries {
    /// An empty series with one-second buckets (the disk model's default
    /// bucket width). Exists so reports can `#[serde(default)]` series
    /// fields added after their artifacts were written.
    fn default() -> Self {
        TimeSeries::new(1_000_000)
    }
}

impl TimeSeries {
    /// Create a series with the given bucket width in microseconds.
    pub fn new(bucket_us: u64) -> Self {
        assert!(bucket_us > 0, "bucket width must be positive");
        TimeSeries {
            bucket_us,
            buckets: Vec::new(),
        }
    }

    /// Bucket width in microseconds.
    pub fn bucket_us(&self) -> u64 {
        self.bucket_us
    }

    /// Add `amount` to the bucket containing `at`.
    pub fn add(&mut self, at: SimTime, amount: u64) {
        let idx = (at.as_micros() / self.bucket_us) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += amount;
    }

    /// The per-bucket totals, one entry per bucket from time zero.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Iterate `(bucket_start_seconds, amount)` pairs for reporting.
    pub fn iter_seconds(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = self.bucket_us as f64 / 1e6;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as f64 * width, v))
    }

    /// Re-bin into `n` equal-width buckets spanning the series, averaging
    /// nothing: amounts are summed. Useful to print a fixed-width chart
    /// regardless of run length.
    pub fn rebin(&self, n: usize) -> Vec<u64> {
        assert!(n > 0);
        if self.buckets.is_empty() {
            return vec![0; n];
        }
        let mut out = vec![0u64; n];
        let len = self.buckets.len();
        for (i, &v) in self.buckets.iter().enumerate() {
            let target = i * n / len;
            out[target] += v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_their_bucket() {
        let mut s = TimeSeries::new(1_000_000); // 1s buckets
        s.add(SimTime::from_millis(500), 3);
        s.add(SimTime::from_millis(999), 1);
        s.add(SimTime::from_millis(1000), 7);
        assert_eq!(s.buckets(), &[4, 7]);
        assert_eq!(s.total(), 11);
    }

    #[test]
    fn buckets_grow_on_demand() {
        let mut s = TimeSeries::new(100);
        s.add(SimTime::from_micros(950), 1);
        assert_eq!(s.buckets().len(), 10);
        assert_eq!(s.buckets()[9], 1);
        assert!(s.buckets()[..9].iter().all(|&v| v == 0));
    }

    #[test]
    fn iter_seconds_reports_bucket_starts() {
        let mut s = TimeSeries::new(500_000);
        s.add(SimTime::from_millis(600), 2);
        let points: Vec<_> = s.iter_seconds().collect();
        assert_eq!(points, vec![(0.0, 0), (0.5, 2)]);
    }

    #[test]
    fn rebin_preserves_total() {
        let mut s = TimeSeries::new(10);
        for i in 0..100 {
            s.add(SimTime::from_micros(i * 10), i);
        }
        let r = s.rebin(7);
        assert_eq!(r.iter().sum::<u64>(), s.total());
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn rebin_of_empty_series_is_zeroes() {
        let s = TimeSeries::new(10);
        assert_eq!(s.rebin(3), vec![0, 0, 0]);
    }
}
