//! Test-only oracle: the original `BTreeSet`-keyed buffer pool.
//!
//! This is the pre-frame-table implementation of [`crate::pool`], kept
//! verbatim (modulo names) behind `#[cfg(test)]` as an **equivalence
//! oracle**. The slab/intrusive-list pool must be observationally
//! identical — same hit/miss outcomes, same eviction victims, same
//! stats — and the property test at the bottom of this file drives both
//! implementations with randomized fix/release/reprioritize/discard
//! sequences under every [`ReplacementPolicy`] to prove it.
//!
//! Do not extend this module with new features; it exists only so the
//! fast pool can be diffed against the simple one.

use std::collections::{BTreeSet, HashMap};

use crate::error::{StorageError, StorageResult};
use crate::page::{PageBuf, PageId};
use crate::pool::{
    FixOutcome, PagePriority, PoolConfig, PoolStats, ReplacementPolicy, ResidentPage,
};

#[derive(Debug)]
struct Frame {
    buf: PageBuf,
    pin_count: u32,
    priority: PagePriority,
    last_use: u64,
    prev_use: u64,
}

/// The original map + ordered-candidate-set pool.
#[derive(Debug)]
pub struct LegacyPool {
    cfg: PoolConfig,
    frames: HashMap<PageId, Frame>,
    /// Unpinned frames ordered by (effective priority, last use, id); the
    /// first element is the next victim. Pinned frames are absent.
    candidates: BTreeSet<(u8, u64, PageId)>,
    use_seq: u64,
    stats: PoolStats,
}

impl LegacyPool {
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.capacity > 0, "pool capacity must be positive");
        LegacyPool {
            frames: HashMap::with_capacity(cfg.capacity),
            candidates: BTreeSet::new(),
            use_seq: 0,
            stats: PoolStats::default(),
            cfg,
        }
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    fn candidate_key(&self, frame: &Frame, id: PageId) -> (u8, u64, PageId) {
        match self.cfg.policy {
            ReplacementPolicy::Lru => (PagePriority::Normal as u8, frame.last_use, id),
            ReplacementPolicy::PriorityLru => (frame.priority as u8, frame.last_use, id),
            ReplacementPolicy::Lru2 => (PagePriority::Normal as u8, frame.prev_use, id),
        }
    }

    pub fn fix(&mut self, id: PageId) -> FixOutcome {
        self.stats.logical_reads += 1;
        self.use_seq += 1;
        let seq = self.use_seq;
        if let Some(frame) = self.frames.get(&id) {
            self.stats.hits += 1;
            if frame.pin_count == 0 {
                let key = self.candidate_key(frame, id);
                self.candidates.remove(&key);
            }
            let frame = self.frames.get_mut(&id).expect("present");
            frame.pin_count += 1;
            frame.prev_use = frame.last_use;
            frame.last_use = seq;
            FixOutcome::Hit(frame.buf.clone())
        } else {
            self.stats.misses += 1;
            FixOutcome::Miss
        }
    }

    pub fn complete_miss(&mut self, id: PageId, buf: PageBuf) -> StorageResult<()> {
        if let Some(frame) = self.frames.get(&id) {
            if frame.pin_count == 0 {
                let key = self.candidate_key(frame, id);
                self.candidates.remove(&key);
            }
            self.use_seq += 1;
            let seq = self.use_seq;
            let frame = self.frames.get_mut(&id).expect("present");
            frame.pin_count += 1;
            frame.prev_use = frame.last_use;
            frame.last_use = seq;
            return Ok(());
        }
        if self.frames.len() >= self.cfg.capacity {
            let victim =
                self.candidates
                    .iter()
                    .next()
                    .copied()
                    .ok_or(StorageError::PoolExhausted {
                        capacity: self.cfg.capacity,
                    })?;
            self.candidates.remove(&victim);
            self.frames.remove(&victim.2);
            self.stats.evictions += 1;
        }
        self.use_seq += 1;
        self.frames.insert(
            id,
            Frame {
                buf,
                pin_count: 1,
                priority: PagePriority::Normal,
                last_use: self.use_seq,
                prev_use: 0,
            },
        );
        Ok(())
    }

    pub fn release(&mut self, id: PageId, priority: PagePriority) -> StorageResult<()> {
        {
            let frame = self
                .frames
                .get_mut(&id)
                .ok_or(StorageError::NotResident(id))?;
            if frame.pin_count == 0 {
                return Err(StorageError::PinViolation(id));
            }
            frame.pin_count -= 1;
            if frame.priority != priority {
                self.stats.reprioritizations += 1;
            }
            frame.priority = priority;
        }
        let frame = &self.frames[&id];
        if frame.pin_count == 0 {
            let key = self.candidate_key(frame, id);
            self.candidates.insert(key);
        }
        Ok(())
    }

    pub fn next_victim(&self) -> Option<PageId> {
        self.candidates.iter().next().map(|&(_, _, id)| id)
    }

    pub fn resident_pages(&self) -> Vec<ResidentPage> {
        let mut out: Vec<ResidentPage> = self
            .frames
            .iter()
            .map(|(&id, f)| ResidentPage {
                id,
                priority: f.priority,
                pinned: f.pin_count > 0,
            })
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    pub fn discard(&mut self, id: PageId) {
        let Some(frame) = self.frames.get(&id) else {
            return;
        };
        if frame.pin_count > 0 {
            return;
        }
        let key = self.candidate_key(frame, id);
        self.candidates.remove(&key);
        self.frames.remove(&id);
    }

    pub fn clear_unpinned(&mut self) {
        for (_, _, id) in std::mem::take(&mut self.candidates) {
            self.frames.remove(&id);
        }
    }
}

/// Property test: the frame-table pool and the legacy pool are
/// observationally equivalent under randomized operation sequences.
#[cfg(test)]
mod equivalence {
    use super::*;
    use crate::page::{zeroed_page, FileId};
    use crate::pool::BufferPool;
    use scanshare_prng::Rng;

    const CAPACITY: usize = 32;
    const UNIVERSE: u64 = 96;
    const STEPS: usize = 4000;

    fn pid(p: u64) -> PageId {
        PageId::new(FileId(0), p as u32)
    }

    fn buf(tag: u64) -> PageBuf {
        let mut b = zeroed_page();
        b[0] = tag as u8;
        b.freeze()
    }

    fn same_error(a: &StorageError, b: &StorageError) -> bool {
        matches!(
            (a, b),
            (
                StorageError::PoolExhausted { .. },
                StorageError::PoolExhausted { .. }
            ) | (StorageError::NotResident(_), StorageError::NotResident(_))
                | (StorageError::PinViolation(_), StorageError::PinViolation(_))
        )
    }

    /// Drive both pools through one randomized schedule, asserting at
    /// every step that the observable behavior matches: hit/miss
    /// outcomes, error kinds, the next eviction victim, residency, and
    /// (at the end) the full stats block.
    fn drive(policy: ReplacementPolicy, seed: u64) {
        let mut fast = BufferPool::new(PoolConfig::new(CAPACITY, policy));
        let mut oracle = LegacyPool::new(PoolConfig::new(CAPACITY, policy));
        let mut rng = Rng::seed_from_u64(seed);
        // Outstanding pins (with multiplicity), so releases are mostly
        // legal and the pool never livelocks fully pinned.
        let mut pinned: Vec<PageId> = Vec::new();

        for step in 0..STEPS {
            let roll = rng.next_u64() % 100;
            if (roll < 55 && pinned.len() < CAPACITY - 2) || pinned.is_empty() {
                // Visit: fix a random page, complete on a miss, then
                // either release immediately or keep the pin around.
                let id = pid(rng.next_u64() % UNIVERSE);
                let a = fast.fix(id);
                let b = oracle.fix(id);
                assert_eq!(
                    matches!(a, FixOutcome::Hit(_)),
                    matches!(b, FixOutcome::Hit(_)),
                    "{policy:?} seed {seed} step {step}: fix({id:?}) outcome diverged"
                );
                if matches!(a, FixOutcome::Miss) {
                    let ra = fast.complete_miss(id, buf(id.page as u64));
                    let rb = oracle.complete_miss(id, buf(id.page as u64));
                    match (&ra, &rb) {
                        (Ok(()), Ok(())) => {}
                        (Err(ea), Err(eb)) if same_error(ea, eb) => {
                            // Not installed (all frames pinned); no pin
                            // to track. Continue with the next op.
                            assert_eq!(fast.next_victim(), oracle.next_victim());
                            continue;
                        }
                        _ => panic!(
                            "{policy:?} seed {seed} step {step}: complete_miss diverged: {ra:?} vs {rb:?}"
                        ),
                    }
                }
                if rng.next_u64() % 10 < 7 {
                    let prio = priority(rng.next_u64());
                    fast.release(id, prio).unwrap();
                    oracle.release(id, prio).unwrap();
                } else {
                    pinned.push(id);
                }
            } else if roll < 85 && !pinned.is_empty() {
                // Release one outstanding pin with a random priority.
                let idx = (rng.next_u64() as usize) % pinned.len();
                let id = pinned.swap_remove(idx);
                let prio = priority(rng.next_u64());
                fast.release(id, prio).unwrap();
                oracle.release(id, prio).unwrap();
            } else if roll < 92 {
                // Discard a random page (may be absent or pinned: no-op).
                let id = pid(rng.next_u64() % UNIVERSE);
                fast.discard(id);
                oracle.discard(id);
            } else if roll < 97 {
                // Error path: release a page that may not be resident or
                // may be unpinned — both pools must fail the same way.
                let id = pid(rng.next_u64() % UNIVERSE);
                if !pinned.contains(&id) {
                    let prio = priority(rng.next_u64());
                    match (fast.release(id, prio), oracle.release(id, prio)) {
                        (Ok(()), Ok(())) => panic!(
                            "{policy:?} seed {seed} step {step}: release of unpinned {id:?} succeeded"
                        ),
                        (Err(ea), Err(eb)) => assert!(
                            same_error(&ea, &eb),
                            "{policy:?} seed {seed} step {step}: error kinds diverged: {ea:?} vs {eb:?}"
                        ),
                        (ra, rb) => panic!(
                            "{policy:?} seed {seed} step {step}: release diverged: {ra:?} vs {rb:?}"
                        ),
                    }
                }
            } else {
                fast.clear_unpinned();
                oracle.clear_unpinned();
            }

            // The victim choice is the pool's entire observable policy:
            // check it after every operation.
            assert_eq!(
                fast.next_victim(),
                oracle.next_victim(),
                "{policy:?} seed {seed} step {step}: next victim diverged"
            );
            assert_eq!(fast.len(), oracle.len());
            if step % 256 == 0 {
                assert_eq!(
                    fast.resident_pages(),
                    oracle.resident_pages(),
                    "{policy:?} seed {seed} step {step}: residency diverged"
                );
            }
        }

        assert_eq!(fast.resident_pages(), oracle.resident_pages());
        assert_eq!(
            format!("{:?}", fast.stats()),
            format!("{:?}", oracle.stats()),
            "{policy:?} seed {seed}: final stats diverged"
        );
    }

    fn priority(roll: u64) -> PagePriority {
        match roll % 3 {
            0 => PagePriority::Low,
            1 => PagePriority::Normal,
            _ => PagePriority::High,
        }
    }

    #[test]
    fn frame_table_pool_matches_legacy_oracle() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::PriorityLru,
            ReplacementPolicy::Lru2,
        ] {
            for seed in [1, 7, 42, 0xC0FFEE] {
                drive(policy, seed);
            }
        }
    }

    /// Same randomized schedule, but a seeded fault injector aborts a
    /// quarter of the miss completions — modeling the engine's new read
    /// error path, where a faulted physical read means `complete_miss`
    /// is never called for the page. Both pools must stay equivalent
    /// through every abandoned miss: same victims, same residency, same
    /// stats.
    fn drive_with_read_faults(policy: ReplacementPolicy, seed: u64) {
        use crate::fault::{FaultInjector, FaultKind, FaultOutcome, FaultPlan, FaultRule};
        use crate::sim::SimTime;
        let mut inj = FaultInjector::new(FaultPlan {
            seed,
            rules: vec![FaultRule {
                device: None,
                pages: None,
                from_us: 0,
                until_us: None,
                fault: FaultKind::TransientError { probability: 0.25 },
            }],
        });
        let mut fast = BufferPool::new(PoolConfig::new(CAPACITY, policy));
        let mut oracle = LegacyPool::new(PoolConfig::new(CAPACITY, policy));
        let mut rng = Rng::seed_from_u64(seed ^ 0xfa17);
        let mut pinned: Vec<PageId> = Vec::new();
        let mut aborted = 0u64;

        for step in 0..STEPS {
            let roll = rng.next_u64() % 100;
            if (roll < 70 && pinned.len() < CAPACITY - 2) || pinned.is_empty() {
                let id = pid(rng.next_u64() % UNIVERSE);
                let a = fast.fix(id);
                let b = oracle.fix(id);
                assert_eq!(
                    matches!(a, FixOutcome::Hit(_)),
                    matches!(b, FixOutcome::Hit(_)),
                    "{policy:?} seed {seed} step {step}: fix({id:?}) outcome diverged"
                );
                let mut holds_pin = matches!(a, FixOutcome::Hit(_));
                if matches!(a, FixOutcome::Miss) {
                    let now = SimTime::from_micros(step as u64);
                    if matches!(
                        inj.check(now, 0, id.page as u64),
                        FaultOutcome::Error { .. }
                    ) {
                        // The read failed: neither pool installs the page.
                        aborted += 1;
                    } else {
                        fast.complete_miss(id, buf(id.page as u64)).unwrap();
                        oracle.complete_miss(id, buf(id.page as u64)).unwrap();
                        holds_pin = true;
                    }
                }
                if holds_pin {
                    if rng.next_u64() % 10 < 7 {
                        let prio = priority(rng.next_u64());
                        fast.release(id, prio).unwrap();
                        oracle.release(id, prio).unwrap();
                    } else {
                        pinned.push(id);
                    }
                }
            } else if roll < 90 && !pinned.is_empty() {
                let idx = (rng.next_u64() as usize) % pinned.len();
                let id = pinned.swap_remove(idx);
                let prio = priority(rng.next_u64());
                fast.release(id, prio).unwrap();
                oracle.release(id, prio).unwrap();
            } else {
                let id = pid(rng.next_u64() % UNIVERSE);
                fast.discard(id);
                oracle.discard(id);
            }
            assert_eq!(
                fast.next_victim(),
                oracle.next_victim(),
                "{policy:?} seed {seed} step {step}: next victim diverged"
            );
            assert_eq!(fast.len(), oracle.len());
        }
        assert!(aborted > 0, "{policy:?} seed {seed}: plan never fired");
        assert_eq!(fast.resident_pages(), oracle.resident_pages());
        assert_eq!(
            format!("{:?}", fast.stats()),
            format!("{:?}", oracle.stats()),
            "{policy:?} seed {seed}: final stats diverged"
        );
    }

    #[test]
    fn pools_stay_equivalent_when_miss_completions_fault() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::PriorityLru,
            ReplacementPolicy::Lru2,
        ] {
            for seed in [3, 11, 0xFA017] {
                drive_with_read_faults(policy, seed);
            }
        }
    }

    /// Zero-capacity pools are a configuration bug, and both
    /// implementations must reject them the same way: loudly, at
    /// construction, before any page traffic can hit them.
    #[test]
    fn zero_capacity_is_rejected_identically_by_both_pools() {
        let fast = std::panic::catch_unwind(|| {
            BufferPool::new(PoolConfig::new(0, ReplacementPolicy::Lru))
        });
        let oracle = std::panic::catch_unwind(|| {
            LegacyPool::new(PoolConfig::new(0, ReplacementPolicy::Lru))
        });
        assert!(fast.is_err(), "frame-table pool accepted capacity 0");
        assert!(oracle.is_err(), "legacy pool accepted capacity 0");
    }

    /// With every frame pinned, both pools report the same exhaustion:
    /// no victim candidate, `PoolExhausted` from `complete_miss`, and an
    /// identical recovery once a single pin is dropped.
    #[test]
    fn fully_pinned_pools_exhaust_and_recover_identically() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::PriorityLru,
            ReplacementPolicy::Lru2,
        ] {
            let cap = 4;
            let mut fast = BufferPool::new(PoolConfig::new(cap, policy));
            let mut oracle = LegacyPool::new(PoolConfig::new(cap, policy));
            for p in 0..cap as u64 {
                let id = pid(p);
                assert!(matches!(fast.fix(id), FixOutcome::Miss));
                assert!(matches!(oracle.fix(id), FixOutcome::Miss));
                fast.complete_miss(id, buf(p)).unwrap();
                oracle.complete_miss(id, buf(p)).unwrap();
            }
            assert_eq!(fast.next_victim(), None);
            assert_eq!(oracle.next_victim(), None);

            let extra = pid(99);
            assert!(matches!(fast.fix(extra), FixOutcome::Miss));
            assert!(matches!(oracle.fix(extra), FixOutcome::Miss));
            let ea = fast.complete_miss(extra, buf(99)).unwrap_err();
            let eb = oracle.complete_miss(extra, buf(99)).unwrap_err();
            assert!(
                same_error(&ea, &eb),
                "{policy:?}: exhaustion errors diverged: {ea:?} vs {eb:?}"
            );
            assert!(matches!(ea, StorageError::PoolExhausted { capacity: 4 }));

            // One release frees exactly one victim slot in both pools.
            fast.release(pid(2), PagePriority::Normal).unwrap();
            oracle.release(pid(2), PagePriority::Normal).unwrap();
            assert_eq!(fast.next_victim(), oracle.next_victim());
            assert!(matches!(fast.fix(extra), FixOutcome::Miss));
            assert!(matches!(oracle.fix(extra), FixOutcome::Miss));
            fast.complete_miss(extra, buf(99)).unwrap();
            oracle.complete_miss(extra, buf(99)).unwrap();
            assert_eq!(fast.next_victim(), oracle.next_victim());
            assert_eq!(fast.resident_pages(), oracle.resident_pages());
            assert_eq!(
                format!("{:?}", fast.stats()),
                format!("{:?}", oracle.stats()),
                "{policy:?}: stats diverged after recovery"
            );
        }
    }
}
