//! Disk model with seek accounting.
//!
//! The papers evaluate on hardware chosen specifically because it exposes
//! seek counts (HP-UX) and I/O wait (AIX) in `iostat`. This model exposes
//! the same signals deterministically:
//!
//! * a single head: a request whose first physical page is not the page
//!   after the previously serviced request pays a seek,
//! * FIFO service: requests queue behind one another, so concurrent scans
//!   genuinely interfere (the "busier disk" feedback loop of §7.2),
//! * counters and bucketed time series for pages read and seeks, driving
//!   Table 1 and Figures 17/18.

use serde::{Deserialize, Serialize};

use crate::page::PAGE_SIZE;
use crate::series::TimeSeries;
use crate::sim::{SimDuration, SimTime};

/// Cost parameters of the disk model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Cost of a head movement (average seek + rotational delay).
    pub seek: SimDuration,
    /// Cost of transferring one page once the head is positioned.
    pub transfer_per_page: SimDuration,
    /// Width of the time-series buckets used for the read/seek plots.
    pub series_bucket: SimDuration,
}

impl Default for DiskConfig {
    fn default() -> Self {
        // Mid-2000s enterprise disk: ~5ms seek, ~60MB/s sequential.
        DiskConfig {
            seek: SimDuration::from_micros(5_000),
            transfer_per_page: SimDuration::from_micros(140),
            series_bucket: SimDuration::from_secs(1),
        }
    }
}

/// Aggregate disk counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of read requests serviced.
    pub requests: u64,
    /// Number of pages physically read.
    pub pages_read: u64,
    /// Number of head movements.
    pub seeks: u64,
    /// Total distance the head travelled over all seeks, in pages
    /// (|target − resting position|; the first request travels nothing).
    #[serde(default)]
    pub seek_distance_pages: u64,
    /// Total time the disk spent servicing requests.
    pub busy: SimDuration,
}

impl DiskStats {
    /// Bytes physically read.
    pub fn bytes_read(&self) -> u64 {
        self.pages_read * PAGE_SIZE as u64
    }
}

/// Outcome of a read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadCompletion {
    /// When the disk began servicing the request (>= request time).
    pub start: SimTime,
    /// When the data is available to the requester.
    pub done: SimTime,
    /// Whether the request paid a seek.
    pub seeked: bool,
}

impl ReadCompletion {
    /// Time the requester spent blocked, from issue to completion.
    pub fn wait_from(&self, issued: SimTime) -> SimDuration {
        self.done.since(issued)
    }
}

/// The single-head FIFO disk.
#[derive(Debug)]
pub struct Disk {
    cfg: DiskConfig,
    /// Physical page address one past the last page serviced, i.e. where
    /// the head currently rests. `None` before the first request.
    head: Option<u64>,
    free_at: SimTime,
    stats: DiskStats,
    read_series: TimeSeries,
    seek_series: TimeSeries,
    seek_distance_series: TimeSeries,
}

impl Disk {
    /// Create a disk with the given cost model.
    pub fn new(cfg: DiskConfig) -> Self {
        let bucket = cfg.series_bucket.as_micros();
        Disk {
            cfg,
            head: None,
            free_at: SimTime::ZERO,
            stats: DiskStats::default(),
            read_series: TimeSeries::new(bucket),
            seek_series: TimeSeries::new(bucket),
            seek_distance_series: TimeSeries::new(bucket),
        }
    }

    /// Service a read of `npages` physically contiguous pages starting at
    /// physical address `addr`, issued at time `now`.
    pub fn read(&mut self, now: SimTime, addr: u64, npages: u32) -> ReadCompletion {
        self.read_with_extra(now, addr, npages, SimDuration::ZERO)
    }

    /// Like [`Disk::read`], but with `extra` added to the service time —
    /// the fault injector's hook for latency spikes and device stalls.
    /// The inflated service delays everything queued behind the request
    /// (`free_at` moves), exactly like a real slow-path sector.
    pub fn read_with_extra(
        &mut self,
        now: SimTime,
        addr: u64,
        npages: u32,
        extra: SimDuration,
    ) -> ReadCompletion {
        assert!(npages > 0, "read of zero pages");
        let start = now.max(self.free_at);
        let seeked = self.head != Some(addr);
        let mut service = self.cfg.transfer_per_page.times(npages as u64) + extra;
        let mut seek_distance = 0u64;
        if seeked {
            service += self.cfg.seek;
            self.stats.seeks += 1;
            seek_distance = self.head.unwrap_or(addr).abs_diff(addr);
            self.stats.seek_distance_pages += seek_distance;
        }
        let done = start + service;
        self.head = Some(addr + npages as u64);
        self.free_at = done;
        self.stats.requests += 1;
        self.stats.pages_read += npages as u64;
        self.stats.busy += service;
        self.read_series.add(done, npages as u64);
        if seeked {
            self.seek_series.add(done, 1);
            self.seek_distance_series.add(done, seek_distance);
        }
        ReadCompletion {
            start,
            done,
            seeked,
        }
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Pages read per time bucket (Figure 17's series, in pages).
    pub fn read_series(&self) -> &TimeSeries {
        &self.read_series
    }

    /// Seeks per time bucket (Figure 18's series).
    pub fn seek_series(&self) -> &TimeSeries {
        &self.seek_series
    }

    /// Head-travel distance per time bucket, in pages.
    pub fn seek_distance_series(&self) -> &TimeSeries {
        &self.seek_distance_series
    }

    /// The time at which the disk becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskConfig {
            seek: SimDuration::from_micros(1000),
            transfer_per_page: SimDuration::from_micros(100),
            series_bucket: SimDuration::from_secs(1),
        })
    }

    #[test]
    fn first_read_seeks() {
        let mut d = disk();
        let c = d.read(SimTime::ZERO, 0, 1);
        assert!(c.seeked);
        assert_eq!(c.done.as_micros(), 1100);
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn sequential_reads_do_not_seek() {
        let mut d = disk();
        d.read(SimTime::ZERO, 0, 4);
        let c = d.read(SimTime::from_micros(5000), 4, 4);
        assert!(!c.seeked);
        assert_eq!(d.stats().seeks, 1);
        assert_eq!(d.stats().pages_read, 8);
    }

    #[test]
    fn non_contiguous_reads_seek() {
        let mut d = disk();
        d.read(SimTime::ZERO, 0, 4);
        let c = d.read(SimTime::from_micros(5000), 100, 1);
        assert!(c.seeked);
        // Even going backwards to an already-read page costs a seek.
        let c2 = d.read(SimTime::from_micros(10_000), 0, 1);
        assert!(c2.seeked);
        assert_eq!(d.stats().seeks, 3);
    }

    #[test]
    fn requests_queue_fifo() {
        let mut d = disk();
        let c1 = d.read(SimTime::ZERO, 0, 1); // done at 1100
        let c2 = d.read(SimTime::ZERO, 50, 1); // must wait for c1
        assert_eq!(c2.start, c1.done);
        assert_eq!(c2.done.as_micros(), 1100 + 1100);
        assert_eq!(c2.wait_from(SimTime::ZERO).as_micros(), 2200);
    }

    #[test]
    fn idle_gap_does_not_accumulate_busy_time() {
        let mut d = disk();
        d.read(SimTime::ZERO, 0, 1);
        d.read(SimTime::from_secs(10), 1, 1);
        assert_eq!(d.stats().busy.as_micros(), 1100 + 100);
    }

    #[test]
    fn series_record_at_completion_time() {
        let mut d = disk();
        // Completes at 1.1ms -> bucket 0.
        d.read(SimTime::ZERO, 0, 2);
        // Completes just after 1s -> bucket 1.
        d.read(SimTime::from_micros(999_950), 100, 1);
        assert_eq!(d.read_series().buckets(), &[2, 1]);
        assert_eq!(d.seek_series().buckets(), &[1, 1]);
    }

    #[test]
    fn seek_distance_tracks_head_travel() {
        let mut d = disk();
        // First request: the head has no resting position, distance 0.
        d.read(SimTime::ZERO, 100, 4);
        assert_eq!(d.stats().seek_distance_pages, 0);
        // Head rests at 104; jumping to 4 travels 100 pages.
        d.read(SimTime::from_micros(5000), 4, 1);
        assert_eq!(d.stats().seek_distance_pages, 100);
        // Sequential continuation: no seek, no distance.
        d.read(SimTime::from_micros(10_000), 5, 3);
        assert_eq!(d.stats().seek_distance_pages, 100);
        // Backwards jump from 8 to 0 travels 8.
        d.read(SimTime::from_micros(15_000), 0, 1);
        assert_eq!(d.stats().seek_distance_pages, 108);
        assert_eq!(d.seek_distance_series().total(), 108);
    }

    #[test]
    fn extra_service_time_delays_queued_requests() {
        let mut d = disk();
        // Stalled request: 1000 seek + 100 transfer + 5000 stall.
        let c1 = d.read_with_extra(SimTime::ZERO, 0, 1, SimDuration::from_micros(5000));
        assert_eq!(c1.done.as_micros(), 6100);
        // The next request queues behind the stall, FIFO.
        let c2 = d.read(SimTime::ZERO, 1, 1);
        assert_eq!(c2.start, c1.done);
        assert_eq!(d.stats().busy.as_micros(), 6100 + 100);
    }

    #[test]
    fn bytes_read_scales_by_page_size() {
        let mut d = disk();
        d.read(SimTime::ZERO, 0, 3);
        assert_eq!(d.stats().bytes_read(), 3 * PAGE_SIZE as u64);
    }
}
