//! Storage substrate for the `scanshare` reproduction.
//!
//! This crate implements the parts of a database storage layer that the
//! scan-sharing papers (ICDE 2007 table-scan grouping/throttling and its
//! VLDB 2007 index-scan companion) take for granted:
//!
//! * a **virtual clock** ([`sim::SimTime`]) so that multi-scan experiments
//!   are deterministic and reproducible,
//! * a **disk model** ([`disk::Disk`]) with a single head, per-request seek
//!   and transfer costs, FIFO service, and the seek/read counters the
//!   papers measure via `iostat`,
//! * a **volume layout** ([`volume::Volume`]) that maps logical file pages
//!   to physical addresses in extent-sized runs, so that interleaved file
//!   growth produces realistic non-contiguous layouts,
//! * an in-memory **page store** ([`store::FileStore`]) holding the actual
//!   page bytes (the "platters"),
//! * a **buffer pool** ([`pool::BufferPool`]) that supports the release
//!   priority hint the papers rely on ("release page with priority p"),
//!   with both a plain LRU policy (the baseline) and a priority-aware LRU
//!   policy (the scan-sharing prototype).
//!
//! The crate is deliberately independent of the query layer: the sharing
//! manager in `scanshare` treats both the index and the cache as black
//! boxes, exactly as the papers require, and only this crate knows what a
//! page actually is.

pub mod array;
pub mod disk;
pub mod error;
pub mod fault;
pub mod page;
pub mod pool;
#[cfg(test)]
mod pool_legacy;
pub mod series;
pub mod sim;
pub mod store;
pub mod volume;

pub use array::DiskArray;
pub use disk::{Disk, DiskConfig, DiskStats, ReadCompletion};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultInjector, FaultKind, FaultOutcome, FaultPlan, FaultRule, FaultStats};
pub use page::{FileId, PageBuf, PageId, PAGE_SIZE};
pub use pool::{
    BufferPool, FixOutcome, PagePriority, PoolConfig, PoolStats, ReplacementPolicy, ResidentPage,
};
pub use series::TimeSeries;
pub use sim::{SimDuration, SimTime};
pub use store::FileStore;
pub use volume::Volume;

/// Number of pages per extent/block.
///
/// The papers use 16-page blocks ("we set it to 16 pages with a page size
/// of 32 Kbytes") and perform sharing-manager calls at every extent
/// boundary; the prefetcher and the MDC block layout both use this unit.
pub const PAGES_PER_EXTENT: u32 = 16;
