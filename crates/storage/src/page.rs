//! Page and file identifiers, and the raw page buffer type.
//!
//! The papers run with 32 KB pages; we keep the same layout constants but
//! use an 8 KB in-memory page so that a TPC-H-shaped workload fits in RAM.
//! All experiments are driven by page *counts* and the pool/table ratio,
//! so the absolute page size only scales the reported byte totals.

use std::fmt;

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Size of a page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page file (heap file, index file, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Identifier of a page within the volume: a file plus a page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId {
    /// The owning file.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page: u32,
}

impl PageId {
    /// Construct a page id.
    pub const fn new(file: FileId, page: u32) -> Self {
        PageId { file, page }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file.0, self.page)
    }
}

/// An immutable snapshot of a page's bytes, as handed out by the buffer
/// pool. `Bytes` is cheaply cloneable so multiple fixed readers share one
/// allocation.
pub type PageBuf = Bytes;

/// Allocate a zeroed, mutable page buffer of [`PAGE_SIZE`] bytes.
pub fn zeroed_page() -> BytesMut {
    BytesMut::zeroed(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_ordering_is_file_major() {
        let a = PageId::new(FileId(0), 99);
        let b = PageId::new(FileId(1), 0);
        assert!(a < b);
    }

    #[test]
    fn zeroed_page_has_page_size() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(PageId::new(FileId(3), 17).to_string(), "3:17");
    }
}
