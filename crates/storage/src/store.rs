//! The backing page store — the "platters" of the simulated disk.
//!
//! [`FileStore`] owns the authoritative bytes of every page of every file,
//! plus the [`Volume`] that assigns them physical addresses. It performs no
//! timing: the [`crate::disk::Disk`] model decides *when* a read completes,
//! the store decides *what* the bytes are. Loading a database is a direct
//! store operation (bulk loads bypass the buffer pool, as in real engines).

use bytes::Bytes;

use crate::error::{StorageError, StorageResult};
use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::volume::Volume;

/// In-memory page files plus their physical layout.
#[derive(Debug)]
pub struct FileStore {
    volume: Volume,
    files: Vec<Vec<Bytes>>,
}

impl FileStore {
    /// Create a store whose volume allocates runs of `extent_pages` pages.
    pub fn new(extent_pages: u32) -> Self {
        FileStore {
            volume: Volume::new(extent_pages),
            files: Vec::new(),
        }
    }

    /// Create a new, empty file.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(Vec::new());
        id
    }

    /// Number of files in the store.
    pub fn num_files(&self) -> u32 {
        self.files.len() as u32
    }

    /// Number of pages in `file`.
    pub fn num_pages(&self, file: FileId) -> StorageResult<u32> {
        self.file(file).map(|f| f.len() as u32)
    }

    /// Append a page to `file`, assigning it the next page number and a
    /// physical address. The buffer must be exactly [`PAGE_SIZE`] bytes.
    pub fn append_page(&mut self, file: FileId, data: Bytes) -> StorageResult<PageId> {
        if data.len() != PAGE_SIZE {
            return Err(StorageError::PageOverflow {
                needed: data.len(),
                available: PAGE_SIZE,
            });
        }
        let pages = self
            .files
            .get_mut(file.0 as usize)
            .ok_or(StorageError::UnknownFile(file))?;
        let id = PageId::new(file, pages.len() as u32);
        pages.push(data);
        self.volume.ensure(id);
        Ok(id)
    }

    /// Overwrite an existing page in place.
    pub fn write_page(&mut self, id: PageId, data: Bytes) -> StorageResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(StorageError::PageOverflow {
                needed: data.len(),
                available: PAGE_SIZE,
            });
        }
        let file_pages = self.num_pages(id.file)?;
        let pages = &mut self.files[id.file.0 as usize];
        let slot = pages
            .get_mut(id.page as usize)
            .ok_or(StorageError::PageOutOfBounds { id, file_pages })?;
        *slot = data;
        Ok(())
    }

    /// Read the authoritative bytes of a page (no timing; cheap clone).
    pub fn read_page(&self, id: PageId) -> StorageResult<PageBuf> {
        let pages = self.file(id.file)?;
        pages
            .get(id.page as usize)
            .cloned()
            .ok_or(StorageError::PageOutOfBounds {
                id,
                file_pages: pages.len() as u32,
            })
    }

    /// Physical address of a page on the volume.
    pub fn physical(&self, id: PageId) -> StorageResult<u64> {
        // Bounds-check first so missing pages and missing extents are
        // reported the same way.
        let pages = self.file(id.file)?;
        if id.page as usize >= pages.len() {
            return Err(StorageError::PageOutOfBounds {
                id,
                file_pages: pages.len() as u32,
            });
        }
        self.volume.lookup(id).ok_or(StorageError::Corrupt(format!(
            "page {id} exists but its extent was never allocated"
        )))
    }

    /// The underlying volume (for layout inspection in tests/benches).
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    /// Rebuild a store from persisted parts. `files[i]` holds file `i`'s
    /// pages in order; the volume must describe the same layout that was
    /// saved.
    pub fn from_parts(volume: Volume, files: Vec<Vec<Bytes>>) -> StorageResult<Self> {
        for (fi, pages) in files.iter().enumerate() {
            for (pi, p) in pages.iter().enumerate() {
                if p.len() != PAGE_SIZE {
                    return Err(StorageError::Corrupt(format!(
                        "file {fi} page {pi} has {} bytes",
                        p.len()
                    )));
                }
            }
        }
        Ok(FileStore { volume, files })
    }

    fn file(&self, file: FileId) -> StorageResult<&Vec<Bytes>> {
        self.files
            .get(file.0 as usize)
            .ok_or(StorageError::UnknownFile(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;

    fn page_with(tag: u8) -> Bytes {
        let mut p = zeroed_page();
        p[0] = tag;
        p.freeze()
    }

    #[test]
    fn append_then_read_roundtrips() {
        let mut s = FileStore::new(4);
        let f = s.create_file();
        let id = s.append_page(f, page_with(42)).unwrap();
        assert_eq!(id, PageId::new(f, 0));
        assert_eq!(s.read_page(id).unwrap()[0], 42);
        assert_eq!(s.num_pages(f).unwrap(), 1);
    }

    #[test]
    fn wrong_sized_page_is_rejected() {
        let mut s = FileStore::new(4);
        let f = s.create_file();
        let err = s.append_page(f, Bytes::from_static(b"tiny")).unwrap_err();
        assert!(matches!(err, StorageError::PageOverflow { .. }));
    }

    #[test]
    fn write_page_overwrites_in_place() {
        let mut s = FileStore::new(4);
        let f = s.create_file();
        let id = s.append_page(f, page_with(1)).unwrap();
        s.write_page(id, page_with(2)).unwrap();
        assert_eq!(s.read_page(id).unwrap()[0], 2);
    }

    #[test]
    fn out_of_bounds_reads_error() {
        let mut s = FileStore::new(4);
        let f = s.create_file();
        s.append_page(f, page_with(0)).unwrap();
        let err = s.read_page(PageId::new(f, 1)).unwrap_err();
        assert!(matches!(err, StorageError::PageOutOfBounds { .. }));
        let err = s.read_page(PageId::new(FileId(9), 0)).unwrap_err();
        assert!(matches!(err, StorageError::UnknownFile(_)));
    }

    #[test]
    fn physical_addresses_follow_the_volume() {
        let mut s = FileStore::new(2);
        let f0 = s.create_file();
        let f1 = s.create_file();
        // Interleave growth: f0 gets pages 0..2 (extent 0), f1 page 0, f0 page 2.
        s.append_page(f0, page_with(0)).unwrap();
        s.append_page(f0, page_with(1)).unwrap();
        s.append_page(f1, page_with(2)).unwrap();
        s.append_page(f0, page_with(3)).unwrap();
        assert_eq!(s.physical(PageId::new(f0, 0)).unwrap(), 0);
        assert_eq!(s.physical(PageId::new(f0, 1)).unwrap(), 1);
        assert_eq!(s.physical(PageId::new(f1, 0)).unwrap(), 2);
        assert_eq!(s.physical(PageId::new(f0, 2)).unwrap(), 4);
        assert!(s.physical(PageId::new(f0, 3)).is_err());
    }
}
