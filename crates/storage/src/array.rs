//! A striped array of disks.
//!
//! The papers' hardware runs FAStT / 16-SSA-disk arrays; a single-head
//! model understates the parallelism concurrent scans can extract.
//! [`DiskArray`] stripes the physical address space across `n` identical
//! [`Disk`]s in extent-sized stripes, so requests from scans working in
//! different regions are serviced in parallel while each stripe still
//! pays realistic seek costs. With `n = 1` it degenerates to the single
//! disk used by the calibrated headline experiments.

use crate::disk::{Disk, DiskConfig, DiskStats, ReadCompletion};
use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultInjector, FaultOutcome};
use crate::series::TimeSeries;
use crate::sim::{SimDuration, SimTime};

/// A striped array of identical disks.
#[derive(Debug)]
pub struct DiskArray {
    disks: Vec<Disk>,
    stripe_pages: u64,
}

impl DiskArray {
    /// Create an array of `n_disks` disks with `stripe_pages`-page
    /// stripes (use the extent size so block reads stay on one disk).
    pub fn new(cfg: DiskConfig, n_disks: u32, stripe_pages: u32) -> Self {
        assert!(n_disks > 0, "need at least one disk");
        assert!(stripe_pages > 0, "stripe must be positive");
        DiskArray {
            disks: (0..n_disks).map(|_| Disk::new(cfg.clone())).collect(),
            stripe_pages: stripe_pages as u64,
        }
    }

    /// Number of disks.
    pub fn n_disks(&self) -> u32 {
        self.disks.len() as u32
    }

    /// The disk (device index) physical address `addr` routes to — the
    /// same routing [`DiskArray::read`] uses, exposed so observability
    /// layers can tag miss I/O with its device.
    pub fn device_of(&self, addr: u64) -> u32 {
        self.disk_of(addr) as u32
    }

    fn disk_of(&self, addr: u64) -> usize {
        ((addr / self.stripe_pages) % self.disks.len() as u64) as usize
    }

    /// Service a read of `npages` contiguous pages starting at `addr`,
    /// splitting at stripe boundaries and routing each piece to its
    /// disk. The returned completion is the latest piece's completion;
    /// `seeked` is true if any piece seeked.
    pub fn read(&mut self, now: SimTime, addr: u64, npages: u32) -> ReadCompletion {
        assert!(npages > 0, "read of zero pages");
        let mut start = now;
        let mut done = now;
        let mut seeked = false;
        let mut at = addr;
        let mut left = npages as u64;
        let mut first = true;
        while left > 0 {
            let stripe_end = (at / self.stripe_pages + 1) * self.stripe_pages;
            let chunk = left.min(stripe_end - at) as u32;
            let d = self.disk_of(at);
            let c = self.disks[d].read(now, at, chunk);
            if first {
                start = c.start;
                first = false;
            } else {
                start = start.min(c.start);
            }
            done = done.max(c.done);
            seeked |= c.seeked;
            at += chunk as u64;
            left -= chunk as u64;
        }
        ReadCompletion {
            start,
            done,
            seeked,
        }
    }

    /// [`DiskArray::read`] under a fault plan: every stripe-sized piece is
    /// submitted to the injector before being issued, keyed by the device
    /// it routes to and the piece's first physical page.
    ///
    /// An injected error fails the whole request with
    /// [`StorageError::ReadFault`]. Pieces issued before the faulting one
    /// have already been serviced — the device did the work, the requester
    /// just cannot use the data — which matches how a multi-extent request
    /// dies halfway on real hardware. Injected delays inflate the faulted
    /// piece's service time on its device, delaying everything queued
    /// behind it.
    pub fn read_faulted(
        &mut self,
        now: SimTime,
        addr: u64,
        npages: u32,
        injector: &mut FaultInjector,
    ) -> StorageResult<ReadCompletion> {
        assert!(npages > 0, "read of zero pages");
        let mut start = now;
        let mut done = now;
        let mut seeked = false;
        let mut at = addr;
        let mut left = npages as u64;
        let mut first = true;
        while left > 0 {
            let stripe_end = (at / self.stripe_pages + 1) * self.stripe_pages;
            let chunk = left.min(stripe_end - at) as u32;
            let d = self.disk_of(at);
            let extra = match injector.check(now, d as u32, at) {
                FaultOutcome::None => SimDuration::ZERO,
                FaultOutcome::Delay(extra) => extra,
                FaultOutcome::Error { transient } => {
                    return Err(StorageError::ReadFault {
                        device: d as u32,
                        addr: at,
                        transient,
                    });
                }
            };
            let c = self.disks[d].read_with_extra(now, at, chunk, extra);
            if first {
                start = c.start;
                first = false;
            } else {
                start = start.min(c.start);
            }
            done = done.max(c.done);
            seeked |= c.seeked;
            at += chunk as u64;
            left -= chunk as u64;
        }
        Ok(ReadCompletion {
            start,
            done,
            seeked,
        })
    }

    /// Aggregate counters over all disks.
    pub fn stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for d in &self.disks {
            let s = d.stats();
            total.requests += s.requests;
            total.pages_read += s.pages_read;
            total.seeks += s.seeks;
            total.seek_distance_pages += s.seek_distance_pages;
            total.busy += s.busy;
        }
        total
    }

    /// Pages read per time bucket, summed over the array.
    pub fn read_series(&self) -> TimeSeries {
        self.merged(|d| d.read_series())
    }

    /// Seeks per time bucket, summed over the array.
    pub fn seek_series(&self) -> TimeSeries {
        self.merged(|d| d.seek_series())
    }

    /// Head-travel distance per time bucket (pages), summed over the
    /// array.
    pub fn seek_distance_series(&self) -> TimeSeries {
        self.merged(|d| d.seek_distance_series())
    }

    fn merged<'a>(&'a self, f: impl Fn(&'a Disk) -> &'a TimeSeries) -> TimeSeries {
        let bucket = f(&self.disks[0]).bucket_us();
        let mut out = TimeSeries::new(bucket);
        for d in &self.disks {
            for (i, &v) in f(d).buckets().iter().enumerate() {
                if v > 0 {
                    out.add(SimTime::from_micros(i as u64 * bucket), v);
                }
            }
        }
        out
    }

    /// Latest time at which any disk becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.disks
            .iter()
            .map(|d| d.free_at())
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimDuration;

    fn array(n: u32) -> DiskArray {
        DiskArray::new(
            DiskConfig {
                seek: SimDuration::from_micros(1000),
                transfer_per_page: SimDuration::from_micros(100),
                series_bucket: SimDuration::from_secs(1),
            },
            n,
            16,
        )
    }

    #[test]
    fn single_disk_matches_plain_disk() {
        let mut a = array(1);
        let c1 = a.read(SimTime::ZERO, 0, 16);
        assert_eq!(c1.done.as_micros(), 1000 + 1600);
        let c2 = a.read(SimTime::ZERO, 16, 16);
        // Same single disk: FIFO behind the first request, sequential.
        assert_eq!(c2.done.as_micros(), 1000 + 3200);
        assert!(!c2.seeked);
    }

    #[test]
    fn different_stripes_are_serviced_in_parallel() {
        let mut a = array(2);
        let c1 = a.read(SimTime::ZERO, 0, 16); // stripe 0 -> disk 0
        let c2 = a.read(SimTime::ZERO, 16, 16); // stripe 1 -> disk 1
        assert_eq!(c1.done.as_micros(), 2600);
        assert_eq!(c2.done.as_micros(), 2600, "parallel, not queued");
        let stats = a.stats();
        assert_eq!(stats.pages_read, 32);
        assert_eq!(stats.seeks, 2);
    }

    #[test]
    fn requests_split_at_stripe_boundaries() {
        let mut a = array(2);
        // 16 pages starting mid-stripe: 8 on disk 0's stripe, 8 on disk 1.
        let c = a.read(SimTime::ZERO, 8, 16);
        assert!(c.seeked);
        let stats = a.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.pages_read, 16);
        // Both pieces run in parallel: done = seek + 8 pages.
        assert_eq!(c.done.as_micros(), 1000 + 800);
    }

    #[test]
    fn round_robin_covers_all_disks() {
        let mut a = array(4);
        for i in 0..8u64 {
            a.read(SimTime::ZERO, i * 16, 16);
        }
        // Each of the 4 disks got 2 requests of 16 pages.
        assert_eq!(a.stats().pages_read, 128);
        assert_eq!(a.stats().requests, 8);
        // Parallelism: total busy is 8 requests' service, but wall-clock
        // completion is only 2 requests deep.
        assert_eq!(a.free_at().as_micros(), 2 * 1000 + 2 * 1600);
    }

    #[test]
    fn faulted_read_with_empty_plan_matches_plain_read() {
        use crate::fault::FaultPlan;
        let mut plain = array(2);
        let mut faulted = array(2);
        let mut inj = FaultInjector::new(FaultPlan::default());
        for (i, npages) in [(0u64, 16u32), (8, 16), (40, 4)] {
            let a = plain.read(SimTime::from_micros(i * 100), i, npages);
            let b = faulted
                .read_faulted(SimTime::from_micros(i * 100), i, npages, &mut inj)
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(
            format!("{:?}", plain.stats()),
            format!("{:?}", faulted.stats())
        );
    }

    #[test]
    fn faulted_read_targets_the_routed_device() {
        use crate::fault::{FaultKind, FaultPlan, FaultRule};
        // Stripe 1 (pages 16..32) routes to disk 1; kill that device.
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                device: Some(1),
                pages: None,
                from_us: 0,
                until_us: None,
                fault: FaultKind::PermanentError,
            }],
        };
        let mut a = array(2);
        let mut inj = FaultInjector::new(plan);
        // Disk 0 is healthy.
        a.read_faulted(SimTime::ZERO, 0, 16, &mut inj).unwrap();
        // Disk 1 is dead.
        let err = a.read_faulted(SimTime::ZERO, 16, 16, &mut inj).unwrap_err();
        assert_eq!(
            err,
            StorageError::ReadFault {
                device: 1,
                addr: 16,
                transient: false
            }
        );
        // A straddling request dies on the second piece, after disk 0
        // already serviced the first.
        let before = a.stats().requests;
        let err = a.read_faulted(SimTime::ZERO, 8, 16, &mut inj).unwrap_err();
        assert!(matches!(err, StorageError::ReadFault { device: 1, .. }));
        assert_eq!(a.stats().requests, before + 1);
    }

    #[test]
    fn injected_stall_delays_the_device_queue() {
        use crate::fault::{FaultKind, FaultPlan, FaultRule};
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                device: None,
                pages: Some((0, 1)),
                from_us: 0,
                until_us: None,
                fault: FaultKind::Stall {
                    probability: 1.0,
                    for_us: 10_000,
                },
            }],
        };
        let mut a = array(1);
        let mut inj = FaultInjector::new(plan);
        let c1 = a.read_faulted(SimTime::ZERO, 0, 1, &mut inj).unwrap();
        assert_eq!(c1.done.as_micros(), 1000 + 100 + 10_000);
        // Out-of-range page: no stall, but it queues behind the stalled one.
        let c2 = a.read_faulted(SimTime::ZERO, 5, 1, &mut inj).unwrap();
        assert_eq!(c2.start, c1.done);
        assert_eq!(inj.stats().delays, 1);
    }

    #[test]
    fn merged_series_sums_buckets() {
        let mut a = array(2);
        a.read(SimTime::ZERO, 0, 16);
        a.read(SimTime::ZERO, 16, 16);
        assert_eq!(a.read_series().total(), 32);
        assert_eq!(a.seek_series().total(), 2);
    }
}
