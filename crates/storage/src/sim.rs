//! Virtual time.
//!
//! All timing in the reproduction is expressed in simulated microseconds.
//! Experiments advance a [`SimTime`] through a discrete-event executor
//! instead of sleeping on a wall clock, which makes every run exactly
//! repeatable: the same seed and configuration produce the same disk
//! traces, the same throttling decisions, and the same end-to-end times.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to microseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e6).round().max(0.0) as u64)
    }

    /// Whole microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply the span by an integer factor.
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(3);
        let d = SimDuration::from_micros(500);
        assert_eq!((t + d).as_micros(), 3_500);
        assert_eq!(((t + d) - t).as_micros(), 500);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_sum_and_times() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&us| SimDuration::from_micros(us))
            .sum();
        assert_eq!(total.as_micros(), 6);
        assert_eq!(SimDuration::from_micros(7).times(3).as_micros(), 21);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.000s");
    }
}
