//! Deterministic pseudo-random numbers for data generation and tests.
//!
//! Replaces the external `rand` crate (unresolvable in an offline
//! build) with the two small, well-studied generators its `StdRng`
//! workflow needs here:
//!
//! * **SplitMix64** — seeds the main generator from a single `u64`
//!   (Steele, Lea & Flood, "Fast splittable pseudorandom number
//!   generators", OOPSLA 2014),
//! * **xoshiro256++** — the main stream (Blackman & Vigna, "Scrambled
//!   linear pseudorandom number generators", 2019).
//!
//! Streams are fully determined by the seed, so the TPC-H-shaped data
//! generator and every experiment stay reproducible run to run. The
//! crate is `no_std` (tests aside) and dependency-free.

#![cfg_attr(not(test), no_std)]

use core::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny generator used to expand one `u64` seed into the
/// xoshiro state. Also usable on its own for cheap hashing-style mixing.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's deterministic random stream.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator, expanding the seed through SplitMix64 as the
    /// xoshiro authors recommend (and as `rand`'s `seed_from_u64` does).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[0, bound)` (`bound > 0`), bias-corrected by
    /// rejection on the widened multiply (Lemire's method).
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw from a range, like `rand`'s `random_range`.
    /// Implemented for integer `Range`/`RangeInclusive` and `f64` ranges.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle, like `rand`'s `SliceRandom::shuffle`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, if the slice is non-empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }
}

/// A range that [`Rng::random_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one uniform sample. Panics on an empty range, like `rand`.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // A full-width span (e.g. `0..=u64::MAX`) wraps to 0.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_by_seed() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(42);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(43);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.random_range(900.0..=10_000.0_f64);
            assert!((900.0..=10_000.0).contains(&f));
            let u = r.random_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.bounded_u64(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn choose_picks_members() {
        let mut r = Rng::seed_from_u64(1);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items).unwrap()));
        }
        assert!(r.choose::<u8>(&[]).is_none());
    }
}
